//! Progressive-precision cascade search: prefix-pruned associative
//! lookup that is bit-identical to the exact sweep.
//!
//! The IMC array the paper models evaluates an associative search
//! dimension group by dimension group, and its energy ladder (Fig. 7) is
//! proportional to how many dimensions are activated. The software
//! analogue: score a *prefix* of the dimensions for every row, prune the
//! rows that provably cannot win, and spend the remaining dimensions only
//! on the survivors.
//!
//! Exactness is by construction, not by approximation. The dot
//! similarity a row can still collect from the unscored suffix is bounded
//! by the **Hamming bound**: from `dot = (ones(q) + ones(r) − ham(q,
//! r)) / 2` and `ham ≥ |ones(q) − ones(r)|` over any dimension range,
//!
//! ```text
//! dot_suffix(q, r) ≤ min(ones(q_suffix), ones(r_suffix))
//! ```
//!
//! so after any stage a row `r` may be discarded exactly when
//!
//! ```text
//! partial[r] + min(ones(q_suffix), ones(r_suffix)) < best_partial_so_far
//! ```
//!
//! because its final score is then *strictly* below another row's final
//! score: it can neither win nor tie, so the winner **and** the
//! workspace's low-row tie-break are unchanged. Row suffix popcounts are
//! a property of the stored memory (in the paper's hardware they are
//! known when the array is programmed) and are computed once per search,
//! amortized over the whole batch; query suffix popcounts cost one pass
//! over each query's words. A one-stage [`CascadePlan`] degenerates to
//! the exact search; a plan of `D` one-dimension stages is the paper's
//! column-by-column evaluation. The `cascade_equivalence` proptest suite
//! pins winner/score/tie-break identity against
//! [`crate::SearchMemory::search_batch`] for arbitrary plans on every
//! reachable kernel backend.
//!
//! Every search also returns [`CascadeStats`] — per-stage shortlist
//! sizes and the total number of activated row-dimensions — which is the
//! telemetry `imc_sim` converts back into the paper's energy ladder.

use crate::batch::{self, multi_dot_words, topk_insert, TopK};
use crate::bits::BitMatrix;
use crate::blocked::SearchMemory;
use crate::calibrate::CostModel;
use crate::error::{LinalgError, Result};
use crate::kernel::{self, Backend};
use crate::{QueryBatch, QueryBatchBuilder, ScoreMatrix};
use std::sync::{Arc, Mutex};

/// Stage layout of a cascade search: strictly increasing dimension
/// prefixes ending at the full dimensionality.
///
/// Stage `k` scores dimensions `[ends[k-1], ends[k])` (stage 0 starts at
/// 0). Any positive widths are legal; stage boundaries that are multiples
/// of 64 are fastest because they avoid masked boundary words, and a
/// first stage near `D / 8 .. D / 4` is a good default for workloads
/// whose winners separate early (see the README's plan-picking guidance).
///
/// # Example
///
/// ```
/// use hd_linalg::CascadePlan;
///
/// let plan = CascadePlan::from_widths(512, &[64, 192, 256]).unwrap();
/// assert_eq!(plan.stages(), 3);
/// assert_eq!(plan.ends(), &[64, 256, 512]);
/// assert_eq!(CascadePlan::exact(512).stages(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadePlan {
    dim: usize,
    /// Cumulative stage boundaries; strictly increasing, last == `dim`.
    ends: Vec<usize>,
}

impl CascadePlan {
    /// Builds a plan from per-stage widths, which must be positive and
    /// sum to `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `widths` is empty or contains
    /// a zero width, and [`LinalgError::ShapeMismatch`] when the widths
    /// do not sum to `dim`.
    pub fn from_widths(dim: usize, widths: &[usize]) -> Result<Self> {
        if widths.is_empty() {
            return Err(LinalgError::Empty { op: "CascadePlan::from_widths" });
        }
        let mut ends = Vec::with_capacity(widths.len());
        let mut total = 0usize;
        for &w in widths {
            if w == 0 {
                return Err(LinalgError::Empty { op: "CascadePlan stage width" });
            }
            total += w;
            ends.push(total);
        }
        if total != dim {
            return Err(LinalgError::ShapeMismatch {
                op: "CascadePlan::from_widths",
                expected: dim,
                found: total,
            });
        }
        Ok(CascadePlan { dim, ends })
    }

    /// An even split into `stages` stages (the first `dim % stages`
    /// stages take one extra dimension).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero stages or zero `dim`, and
    /// [`LinalgError::ShapeMismatch`] when `stages > dim` (a stage would
    /// be empty).
    pub fn uniform(dim: usize, stages: usize) -> Result<Self> {
        if stages == 0 || dim == 0 {
            return Err(LinalgError::Empty { op: "CascadePlan::uniform" });
        }
        if stages > dim {
            return Err(LinalgError::ShapeMismatch {
                op: "CascadePlan::uniform",
                expected: dim,
                found: stages,
            });
        }
        let base = dim / stages;
        let extra = dim % stages;
        let widths: Vec<usize> = (0..stages).map(|s| base + usize::from(s < extra)).collect();
        Self::from_widths(dim, &widths)
    }

    /// The two-stage plan `[first, dim - first]` — score a prefix, then
    /// finish the survivors. The most common shape in practice.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when either stage would be empty
    /// (`first == 0` or `first >= dim`).
    pub fn prefix(dim: usize, first: usize) -> Result<Self> {
        if first == 0 || first >= dim {
            return Err(LinalgError::Empty { op: "CascadePlan::prefix" });
        }
        Self::from_widths(dim, &[first, dim - first])
    }

    /// The degenerate one-stage plan: the cascade IS the exact search
    /// (no pruning can fire; telemetry reports full activation).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn exact(dim: usize) -> Self {
        assert!(dim > 0, "cascade plan needs a positive dimensionality");
        CascadePlan { dim, ends: vec![dim] }
    }

    /// Dimensionality the plan covers.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stages.
    #[inline]
    pub fn stages(&self) -> usize {
        self.ends.len()
    }

    /// Cumulative stage boundaries (strictly increasing; last == `dim`).
    #[inline]
    pub fn ends(&self) -> &[usize] {
        &self.ends
    }

    /// Per-stage widths in dimensions.
    pub fn widths(&self) -> Vec<usize> {
        let mut prev = 0usize;
        self.ends
            .iter()
            .map(|&e| {
                let w = e - prev;
                prev = e;
                w
            })
            .collect()
    }

    /// Rounds every interior stage boundary to the nearest positive
    /// multiple of `unit`, merging stages that collapse onto the same
    /// boundary (the final boundary stays at `dim`). This adapts an
    /// existing plan to a layout with coarser alignment requirements —
    /// `imc_sim`'s partitioned mappings need stage boundaries on segment
    /// boundaries, and word-aligned (64) boundaries avoid masked
    /// boundary words on any layout. Snapping moves boundaries **without
    /// re-validating the tuner's cost model** (answers are unaffected —
    /// plans change cost, never results); when the alignment constraint
    /// is known before tuning, prefer [`CascadePlan::tuned_aligned`],
    /// which scores candidates on the constrained grid and keeps the
    /// exact-plan fallback guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `unit == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::CascadePlan;
    ///
    /// let plan = CascadePlan::from_widths(10_240, &[600, 1_000, 8_640]).unwrap();
    /// let snapped = plan.snapped(2_048).unwrap();
    /// assert_eq!(snapped.ends(), &[2_048, 10_240]); // 600→2048, 1600→2048 (merged)
    /// assert_eq!(plan.snapped(20_000).unwrap().stages(), 1); // unit ≥ dim: exact plan
    /// ```
    pub fn snapped(&self, unit: usize) -> Result<Self> {
        if unit == 0 {
            return Err(LinalgError::Empty { op: "CascadePlan::snapped" });
        }
        if unit >= self.dim {
            return Ok(CascadePlan::exact(self.dim));
        }
        let mut ends = Vec::with_capacity(self.ends.len());
        for &e in &self.ends[..self.ends.len() - 1] {
            let r = ((e + unit / 2) / unit * unit).max(unit);
            if r >= self.dim || ends.last().is_some_and(|&prev| r <= prev) {
                continue;
            }
            ends.push(r);
        }
        ends.push(self.dim);
        Ok(CascadePlan { dim: self.dim, ends })
    }

    /// Auto-tunes a stage plan for `memory` from a sample of real
    /// queries, replacing hand-picked prefixes.
    ///
    /// Candidate word-aligned prefix widths are scored by running the
    /// exact Hamming-bound pruning on (a strided subsample of) the query
    /// sample — the expected pruning threshold is a function of the
    /// memory's row-popcount profile and the sample's query popcounts,
    /// and replaying the bound on the sample measures it directly. Each
    /// candidate's measured per-stage shortlist sizes feed a deterministic
    /// cost model (tiled SIMD prefix sweep vs. the pricier per-row
    /// continuation) whose relative prices come from the once-per-host
    /// kernel calibration ([`crate::CostModel::active`]; pin
    /// `HD_LINALG_CALIBRATION=fallback` for fully host-independent
    /// plans), a three-stage refinement of the best prefix is
    /// tried, and the winner is kept only if it beats the exact sweep's
    /// modeled cost — workloads whose rows never separate early get
    /// [`CascadePlan::exact`] back, which *is* the right plan for them.
    ///
    /// The tuned plan is workload advice, not a correctness knob: every
    /// plan yields bit-identical winners; tuning only moves where the
    /// activation (and wall-clock) lands. Tuning runs the candidate
    /// cascades over at most 64 sampled queries, so it costs a few
    /// sample-sized batch searches — amortize it like any other
    /// per-deployment derivation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty memory or query
    /// sample and [`LinalgError::ShapeMismatch`] when the sample's
    /// dimensionality differs from the memory's.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::{BitVector, CascadePlan, QueryBatch, SearchMemory};
    ///
    /// let rows: Vec<BitVector> =
    ///     (0..8).map(|r| BitVector::from_bools(&vec![r % 2 == 0; 256])).collect();
    /// let memory = SearchMemory::from_rows(&rows).unwrap();
    /// let sample = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 256])]).unwrap();
    /// let plan = CascadePlan::tuned(&memory, &sample).unwrap();
    /// assert_eq!(plan.dim(), 256);
    /// assert_eq!(
    ///     memory.search_cascade(&sample, &plan).unwrap().winners(),
    ///     memory.winners_batch(&sample).unwrap()
    /// );
    /// ```
    pub fn tuned(memory: &SearchMemory, sample: &QueryBatch) -> Result<Self> {
        Self::tuned_aligned(memory, sample, 64)
    }

    /// [`CascadePlan::tuned`] with every stage boundary constrained to a
    /// multiple of `unit` — the tuner for layouts with coarser alignment
    /// requirements than the word grid, primarily `imc_sim`'s
    /// partitioned mappings (`unit = D / P`, the segment length).
    /// Candidates are generated **on** the constrained grid and scored
    /// there, so the exact-plan fallback guarantee survives the
    /// constraint: a coarse grid whose cheapest aligned cascade still
    /// loses to the exact sweep gets [`CascadePlan::exact`] back.
    /// (Snapping an unconstrained tuned plan after the fact with
    /// [`CascadePlan::snapped`] does *not* re-validate cost — prefer
    /// this entry point when the constraint is known up front.)
    ///
    /// # Errors
    ///
    /// As [`CascadePlan::tuned`], plus [`LinalgError::Empty`] when
    /// `unit == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::{BitVector, CascadePlan, QueryBatch, SearchMemory};
    ///
    /// let rows: Vec<BitVector> =
    ///     (0..8).map(|r| BitVector::from_bools(&vec![r % 2 == 0; 512])).collect();
    /// let memory = SearchMemory::from_rows(&rows).unwrap();
    /// let sample = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 512])]).unwrap();
    /// let plan = CascadePlan::tuned_aligned(&memory, &sample, 128).unwrap();
    /// for &end in &plan.ends()[..plan.stages() - 1] {
    ///     assert_eq!(end % 128, 0); // every interior boundary on the segment grid
    /// }
    /// ```
    pub fn tuned_aligned(memory: &SearchMemory, sample: &QueryBatch, unit: usize) -> Result<Self> {
        Self::tuned_aligned_with(memory, sample, unit, &CostModel::active())
    }

    /// [`CascadePlan::tuned_aligned`] under an explicit [`CostModel`] —
    /// the hook deterministic tests and offline what-if analyses pin a
    /// model with; production callers use the calibrated
    /// [`CostModel::active`] via the public entry points.
    fn tuned_aligned_with(
        memory: &SearchMemory,
        sample: &QueryBatch,
        unit: usize,
        model: &CostModel,
    ) -> Result<Self> {
        let m = memory.matrix();
        if unit == 0 {
            return Err(LinalgError::Empty { op: "CascadePlan::tuned_aligned" });
        }
        if m.rows() == 0 || m.cols() == 0 {
            return Err(LinalgError::Empty { op: "CascadePlan::tuned" });
        }
        if sample.is_empty() {
            return Err(LinalgError::Empty { op: "CascadePlan::tuned(sample)" });
        }
        if sample.dim() != m.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "CascadePlan::tuned",
                expected: m.cols(),
                found: sample.dim(),
            });
        }
        let dim = m.cols();

        // Strided subsample: candidate evaluation replays the pruning on
        // every kept query, so cap the work while staying representative
        // of the sample's traffic mix.
        let take = sample.len().min(TUNE_SAMPLE_CAP);
        let sub_owned: QueryBatch;
        let sub = if take == sample.len() {
            sample
        } else {
            let mut builder = QueryBatchBuilder::with_capacity(dim, take);
            for i in 0..take {
                let pick = i * sample.len() / take;
                builder.push(sample.query(pick)).expect("subsample keeps the dimensionality");
            }
            sub_owned = builder.take_batch().expect("take >= 1 query");
            &sub_owned
        };

        // Two-stage candidates on the constrained grid: power-of-two
        // fractions of the dimensionality rounded up to the word grid
        // when the unit allows it, otherwise power-of-two multiples of
        // the unit itself.
        let mut widths: Vec<usize> = Vec::new();
        if unit <= 64 && 64usize.is_multiple_of(unit) {
            for frac in [64usize, 32, 16, 8, 4, 2] {
                let w = (dim / frac).max(1).next_multiple_of(64);
                if w < dim && !widths.contains(&w) {
                    widths.push(w);
                }
            }
        } else {
            let mut w = unit;
            while w < dim {
                widths.push(w);
                w *= 2;
            }
        }
        let exact_cost = modeled_exact_cost(m.rows(), dim, sub.len(), model, unit);
        let mut best: Option<(CascadePlan, f64)> = None;
        for &w in &widths {
            let plan = CascadePlan::prefix(dim, w).expect("0 < w < dim");
            let cost = modeled_cost(&plan, cascade_active(m, sub, &plan).stats(), model, unit);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
        // Three-stage refinement: give the best prefix a mid checkpoint
        // (on the same grid) so late-separating rows are cut before the
        // full suffix.
        if let Some((two, _)) = &best {
            let e0 = two.ends()[0];
            let grid = if unit <= 64 && 64usize.is_multiple_of(unit) { 64 } else { unit };
            let mid = (4 * e0).next_multiple_of(grid);
            if mid > e0 && mid < dim {
                let plan = CascadePlan::from_widths(dim, &[e0, mid - e0, dim - mid])
                    .expect("strictly increasing boundaries");
                let cost = modeled_cost(&plan, cascade_active(m, sub, &plan).stats(), model, unit);
                if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                    best = Some((plan, cost));
                }
            }
        }
        match best {
            Some((plan, cost)) if cost < exact_cost => Ok(plan),
            _ => Ok(CascadePlan::exact(dim)),
        }
    }
}

/// Queries the tuner replays candidate plans over, at most.
const TUNE_SAMPLE_CAP: usize = 64;

/// Packed words one stage `[prev, e)` drives per (query, row) on a
/// layout whose stage grid is `unit`-bit segments.
///
/// On the word grid (`unit % 64 == 0`, including the contiguous
/// `unit = 64` default) a stage reads words `[prev / 64, word_end(e))`:
/// interior boundaries sit on the word grid, so only an unaligned
/// *final* boundary pays a partial word, exactly once. Off the word
/// grid (`unit % 64 != 0` — partitioned layouts with unaligned segment
/// lengths) the storage is per-segment: each `unit`-bit segment lives in
/// its own `word_end(unit)` padded words and a stage drives whole
/// segments, so the per-stage count is segments × padded words — there
/// is no seam word shared with a neighbouring stage. The previous
/// accounting applied the contiguous word-window formula to every grid,
/// which both double-charged a (nonexistent) shared seam word to the
/// two stages meeting at each unaligned boundary and under-charged the
/// padding sub-word segments actually drive.
fn stage_words(prev: usize, e: usize, unit: usize) -> usize {
    if unit.is_multiple_of(64) {
        word_end(e) - prev / 64
    } else {
        (e - prev).div_ceil(unit) * word_end(unit)
    }
}

/// Deterministic cost of one measured cascade under `model`, in stage-0
/// word units, on a layout whose stage grid is `unit`-bit segments.
fn modeled_cost(plan: &CascadePlan, stats: &CascadeStats, model: &CostModel, unit: usize) -> f64 {
    let queries = stats.queries() as f64;
    let mut prev = 0usize;
    let mut cost = 0.0;
    for (k, &e) in plan.ends().iter().enumerate() {
        let words = stage_words(prev, e, unit) as f64;
        let rows_in = stats.stage_rows()[k] as f64;
        cost += if k == 0 {
            rows_in * words
        } else {
            model.cont_weight * rows_in * words + model.row_overhead_words * rows_in
        };
        cost += queries * model.stage_overhead_words;
        prev = e;
    }
    cost
}

/// What the exact one-stage sweep models to, in the same units.
fn modeled_exact_cost(
    rows: usize,
    dim: usize,
    queries: usize,
    model: &CostModel,
    unit: usize,
) -> f64 {
    (queries * rows * stage_words(0, dim, unit)) as f64
        + queries as f64 * model.stage_overhead_words
}

/// Activation telemetry of one cascade search — the quantity the paper's
/// Fig. 7 energy ladder is proportional to.
///
/// `activated_dims` counts `(row, dimension)` products actually scored:
/// an exact search activates `queries × rows × dim` of them, and every
/// pruned row saves its remaining dimensions. [`CascadeStats::merge`]
/// makes the counters additive across query chunks **of the same
/// memory** (merging stats from memories with different row counts would
/// corrupt [`CascadeStats::exact_dims`], so shapes are asserted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeStats {
    queries: usize,
    rows: usize,
    dim: usize,
    stage_rows: Vec<u64>,
    activated_dims: u64,
}

impl CascadeStats {
    pub(crate) fn zeroed(rows: usize, dim: usize, stages: usize) -> Self {
        CascadeStats { queries: 0, rows, dim, stage_rows: vec![0; stages], activated_dims: 0 }
    }

    /// Queries answered.
    #[inline]
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Memory rows searched per query.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality of the searched memory.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows entering each stage, summed over queries (stage 0 always
    /// admits every row).
    #[inline]
    pub fn stage_rows(&self) -> &[u64] {
        &self.stage_rows
    }

    /// Total `(row, dimension)` products scored across all queries.
    #[inline]
    pub fn activated_dims(&self) -> u64 {
        self.activated_dims
    }

    /// What an exact search would activate: `queries × rows × dim`.
    #[inline]
    pub fn exact_dims(&self) -> u64 {
        self.queries as u64 * self.rows as u64 * self.dim as u64
    }

    /// `activated_dims / exact_dims` in `(0, 1]` — the relative energy of
    /// the cascade under the paper's activation-proportional model (1.0
    /// when no pruning fired).
    pub fn activation_fraction(&self) -> f64 {
        let exact = self.exact_dims();
        if exact == 0 {
            return 1.0;
        }
        self.activated_dims as f64 / exact as f64
    }

    /// Folds another search's counters into this one (used by the
    /// thread-chunked dispatch; callers may also merge successive
    /// batches against the same memory). Shapes must agree.
    ///
    /// # Panics
    ///
    /// Panics if `other` was produced under a different plan shape
    /// (stage count) or a memory of different dimensionality or row
    /// count.
    pub fn merge(&mut self, other: &CascadeStats) {
        assert_eq!(self.stage_rows.len(), other.stage_rows.len(), "merging unrelated plans");
        assert_eq!(self.dim, other.dim, "merging unrelated memories");
        assert_eq!(self.rows, other.rows, "merging unrelated memories");
        self.queries += other.queries;
        self.activated_dims += other.activated_dims;
        for (a, b) in self.stage_rows.iter_mut().zip(&other.stage_rows) {
            *a += b;
        }
    }
}

/// Winners plus activation telemetry of one cascade search. Winners are
/// bit-identical to [`crate::BitMatrix::winners_batch`] — same rows,
/// same scores, same low-row tie-break.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeResults {
    winners: Vec<(usize, u32)>,
    stats: CascadeStats,
}

impl CascadeResults {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.winners.len()
    }

    /// Whether there are no results.
    pub fn is_empty(&self) -> bool {
        self.winners.is_empty()
    }

    /// Winning `(row, score)` of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn winner(&self, q: usize) -> (usize, u32) {
        self.winners[q]
    }

    /// All winners, parallel to the batch's queries.
    pub fn winners(&self) -> &[(usize, u32)] {
        &self.winners
    }

    /// Consumes the results, yielding the winners without a copy.
    pub fn into_winners(self) -> Vec<(usize, u32)> {
        self.winners
    }

    /// Activation telemetry of the search.
    pub fn stats(&self) -> &CascadeStats {
        &self.stats
    }
}

/// Per-query k-best lists plus activation telemetry of one cascade
/// top-k search. The lists are bit-identical to
/// [`crate::BitMatrix::topk_batch`] — same rows, same scores, same
/// score-desc/row-asc order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeTopK {
    topk: TopK,
    stats: CascadeStats,
}

impl CascadeTopK {
    /// The per-query k-best lists.
    pub fn topk(&self) -> &TopK {
        &self.topk
    }

    /// Consumes the results, yielding the k-best lists without a copy.
    pub fn into_topk(self) -> TopK {
        self.topk
    }

    /// Activation telemetry of the search.
    pub fn stats(&self) -> &CascadeStats {
        &self.stats
    }
}

/// Exclusive end of the packed-word range covering bits `[.., hi)`.
#[inline]
fn word_end(hi: usize) -> usize {
    (hi - 1) / 64 + 1
}

/// The query words covering bits `[lo, hi)`, ready for a word-slice dot
/// over `[lo/64, word_end(hi))`: borrowed directly when the stage is
/// word-aligned (a final stage ending at `dim` counts — both operands
/// keep clean tails), otherwise boundary-masked into `scratch`.
fn stage_query<'a>(
    qw: &'a [u64],
    lo: usize,
    hi: usize,
    dim: usize,
    scratch: &'a mut Vec<u64>,
) -> &'a [u64] {
    let wlo = lo / 64;
    let whi = word_end(hi);
    if lo.is_multiple_of(64) && (hi.is_multiple_of(64) || hi == dim) {
        &qw[wlo..whi]
    } else {
        mask_stage(qw, lo, hi, scratch);
        scratch
    }
}

/// Copies the query words covering bits `[lo, hi)` into `out`, masking
/// the boundary words so only that dimension range contributes. The
/// masked copy is built once per (query, stage); per-row scoring then
/// reduces to a plain word-slice dot over `[lo/64, word_end(hi))`.
fn mask_stage(qw: &[u64], lo: usize, hi: usize, out: &mut Vec<u64>) {
    debug_assert!(lo < hi);
    let wlo = lo / 64;
    let whi = word_end(hi);
    out.clear();
    out.extend_from_slice(&qw[wlo..whi]);
    let lo_rem = lo % 64;
    if lo_rem != 0 {
        out[0] &= u64::MAX << lo_rem;
    }
    let hi_rem = hi % 64;
    if hi_rem != 0 {
        let last = out.len() - 1;
        out[last] &= (1u64 << hi_rem) - 1;
    }
}

/// Ones of `words`' bits in `[lo, hi)` without copying. Boundary words
/// are handled outside the interior loop so the hot path is a plain
/// branch-free popcount sweep.
fn ones_in_range(words: &[u64], lo: usize, hi: usize) -> u32 {
    debug_assert!(lo < hi);
    let wlo = lo / 64;
    let whi = word_end(hi);
    let lo_mask = u64::MAX << (lo % 64);
    let hi_mask = if hi.is_multiple_of(64) { u64::MAX } else { (1u64 << (hi % 64)) - 1 };
    if whi - wlo == 1 {
        return (words[wlo] & lo_mask & hi_mask).count_ones();
    }
    let mut total = (words[wlo] & lo_mask).count_ones() + (words[whi - 1] & hi_mask).count_ones();
    total += words[wlo + 1..whi - 1].iter().map(|w| w.count_ones()).sum::<u32>();
    total
}

/// Fills `suffix` (one slot per stage) with the popcount of `words` in
/// the dimensions **after** each stage boundary: `suffix[k] =
/// ones(words[ends[k]..dim))` (0 for the final stage). One pass over the
/// suffix words (stage 0's own bits are never needed): per-stage counts,
/// then a reverse cumulative sum.
fn suffix_ones(words: &[u64], ends: &[usize], suffix: &mut [u32]) {
    debug_assert_eq!(suffix.len(), ends.len());
    let stages = ends.len();
    suffix[0] = 0;
    for k in 1..stages {
        suffix[k] = ones_in_range(words, ends[k - 1], ends[k]);
    }
    // suffix[k] currently holds stage k's own ones; shift into "ones
    // after stage k" by accumulating from the back.
    let mut acc = 0u32;
    for s in suffix.iter_mut().rev() {
        let stage = *s;
        *s = acc;
        acc += stage;
    }
}

/// Row-major copy of each row's leading `e0` bits (boundary word
/// masked) — the stage-0 sub-memory the tiled batched kernels sweep.
fn prefix_matrix(m: &BitMatrix, e0: usize) -> BitMatrix {
    let w0 = word_end(e0);
    let mask = if e0.is_multiple_of(64) { u64::MAX } else { (1u64 << (e0 % 64)) - 1 };
    let mut data = Vec::with_capacity(m.rows() * w0);
    for r in 0..m.rows() {
        data.extend_from_slice(&m.row_words_pub(r)[..w0]);
        let last = data.len() - 1;
        data[last] &= mask;
    }
    BitMatrix::from_raw_words(m.rows(), e0, data)
}

/// Stage-0 partial scores on the active backend: the full batched tiled
/// sweep (SIMD blocked layout, `rayon` chunking) over the prefix
/// sub-memory, driven by the **full-width** queries — the kernels read
/// only the memory's word width per row, and the prefix memory's masked
/// boundary word keeps out-of-stage query bits from contributing. The
/// all-rows stage therefore runs at exactly the exact search's
/// per-dimension cost, with no query re-packing.
fn stage0_scores(m: &BitMatrix, batch: &QueryBatch, e0: usize) -> ScoreMatrix {
    if e0 == m.cols() {
        return m.dot_batch(batch).expect("dimensions validated by caller");
    }
    let prefix = SearchMemory::new(prefix_matrix(m, e0));
    let mut out = ScoreMatrix::zeros(batch.len(), m.rows());
    batch::dot_batch_dispatch(prefix.memory_ref(), batch, &mut out);
    out
}

/// The shared pruning skeleton of every cascade continuation, over
/// queries `[q_offset, q_offset + out.len())`: takes each query's
/// stage-0 partial scores (in `scores`, one `rows`-wide slice per query,
/// updated in place), prunes with the Hamming bound, finishes the
/// survivors stage by stage through `score_stage`, and writes the
/// winners. This skeleton is the exactness-critical core — the
/// contiguous and segmented continuations differ **only** in how a
/// shortlist row collects one stage's dot contribution, which is what
/// `score_stage(k, global_query, cands, partials)` supplies: it must add
/// stage `k`'s dot to `partials[r]` for every `r` in `cands` and return
/// the shortlist's new running maximum. Stage-0 telemetry is accounted
/// by the caller; this function accumulates stages `1..`.
#[allow(clippy::too_many_arguments)]
fn prune_continuation_range<S>(
    rows: usize,
    ends: &[usize],
    row_suffix: &[u32],
    batch: &QueryBatch,
    q_offset: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
    mut score_stage: S,
) where
    S: FnMut(usize, usize, &[u32], &mut [u32]) -> u32,
{
    let stages = ends.len();
    debug_assert_eq!(scores.len(), out.len() * rows);
    let mut q_suffix = vec![0u32; stages];
    let mut cands: Vec<u32> = Vec::with_capacity(rows);
    stats.queries += out.len();
    for (q, slot) in out.iter_mut().enumerate() {
        let partials = &mut scores[q * rows..(q + 1) * rows];
        if stages == 1 {
            // Degenerate plan: stage 0 was the exact search.
            *slot = batch::argmax_scores(partials);
            continue;
        }
        let mut best = partials.iter().copied().max().expect("non-empty memory");
        let gq = q_offset + q;
        let qw = batch.query_words(gq);
        // The query-side suffix popcounts cost a pass over the query's
        // words; computed lazily — only for queries whose shortlist the
        // (free) row-side bound alone fails to collapse. Both bounds are
        // exact, so pruning with the weaker one first never changes
        // winners, only how much work survives.
        let mut q_suffix_ready = false;
        // Prune after stage `k`: row-side Hamming bound first, then the
        // full min(q, r) bound when more than one candidate remains.
        let mut prune =
            |cands: &mut Vec<u32>, partials: &[u32], k: usize, best: u32, from_all_rows: bool| {
                let row_suf = &row_suffix[k * rows..(k + 1) * rows];
                let keep_r = |r: usize| partials[r] as u64 + row_suf[r] as u64 >= best as u64;
                if from_all_rows {
                    cands.clear();
                    cands.extend((0..rows).filter(|&r| keep_r(r)).map(|r| r as u32));
                } else {
                    cands.retain(|&r| keep_r(r as usize));
                }
                if cands.len() > 1 {
                    if !q_suffix_ready {
                        suffix_ones(qw, ends, &mut q_suffix);
                        q_suffix_ready = true;
                    }
                    let qs = q_suffix[k];
                    cands.retain(|&r| {
                        let r = r as usize;
                        partials[r] as u64 + qs.min(row_suf[r]) as u64 >= best as u64
                    });
                }
            };
        prune(&mut cands, partials, 0, best, true);
        // Later stages: finish only the shortlist, re-pruning after each.
        for k in 1..stages {
            best = score_stage(k, gq, &cands, partials);
            stats.stage_rows[k] += cands.len() as u64;
            stats.activated_dims += (cands.len() * (ends[k] - ends[k - 1])) as u64;
            if k + 1 == stages {
                cands.retain(|&r| partials[r as usize] == best);
            } else {
                prune(&mut cands, partials, k, best, false);
            }
        }
        // After the final stage the suffix is empty, so every survivor
        // holds the exact maximum score; `cands` stays in ascending row
        // order, so its first entry is the workspace's low-row tie-break
        // winner.
        *slot = (cands[0] as usize, best);
    }
}

/// The k-th best of `values(..)`, via a descending scratch buffer of
/// `k` scores pre-filled with zeros (every score is ≥ 0 and callers
/// guarantee at least `k` values, so the zeros are always displaced —
/// or the k-th best really is 0). The manual shift-insert keeps the
/// per-query cost branch-light: values at or below the current k-th
/// fall through on one compare.
fn kth_score(values: impl Iterator<Item = u32>, k: usize, buf: &mut Vec<u32>) -> u32 {
    buf.clear();
    buf.resize(k, 0);
    let b = &mut buf[..k];
    for s in values {
        if s > b[k - 1] {
            let mut i = k - 1;
            while i > 0 && b[i - 1] < s {
                b[i] = b[i - 1];
                i -= 1;
            }
            b[i] = s;
        }
    }
    b[k - 1]
}

/// The top-k analogue of [`prune_continuation_range`]: the prune
/// threshold is the k-th best partial score instead of the single best.
/// That bound stays exact: the k rows holding the k best partials can
/// only grow, so the final k-th best score is at least the current k-th
/// best partial — any row whose bound-capped potential falls strictly
/// below it can neither enter the top-k nor tie into it. Those same k
/// rows also always survive the prune (their own bound is ≥ their
/// partial), so the shortlist never drops below `k`, and the k-th best
/// over the shortlist equals the k-th best over all scored rows.
/// `score_stage(k, global_query, cands, partials)` adds stage `k`'s dot
/// to every shortlist row (no running-max contract here). `k` arrives
/// pre-clamped to the row count; `out` holds `k` slots per query, filled
/// score-desc then row-asc.
#[allow(clippy::too_many_arguments)]
fn prune_continuation_topk_range<S>(
    rows: usize,
    ends: &[usize],
    row_suffix: &[u32],
    batch: &QueryBatch,
    k: usize,
    q_offset: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
    mut score_stage: S,
) where
    S: FnMut(usize, usize, &[u32], &mut [u32]),
{
    let stages = ends.len();
    debug_assert!(k >= 1 && k <= rows);
    debug_assert_eq!(scores.len() * k, out.len() * rows);
    // Bounded-insert selection over an ascending row scan yields the
    // exact score-desc/row-asc order (strict shifts leave a tying later
    // row behind the earlier one).
    fn select(rs: impl Iterator<Item = usize>, partials: &[u32], slots: &mut [(usize, u32)]) {
        let mut filled = 0usize;
        for r in rs {
            topk_insert(slots, &mut filled, r, partials[r]);
        }
        debug_assert_eq!(filled, slots.len());
    }
    let mut q_suffix = vec![0u32; stages];
    let mut cands: Vec<u32> = Vec::with_capacity(rows);
    let mut kbuf: Vec<u32> = Vec::with_capacity(k);
    stats.queries += out.len() / k;
    for (q, slots) in out.chunks_exact_mut(k).enumerate() {
        let partials = &mut scores[q * rows..(q + 1) * rows];
        if stages == 1 {
            // Degenerate plan: stage 0 was the exact search.
            select(0..rows, partials, slots);
            continue;
        }
        let mut kth = kth_score(partials.iter().copied(), k, &mut kbuf);
        let gq = q_offset + q;
        let qw = batch.query_words(gq);
        let mut q_suffix_ready = false;
        let mut prune =
            |cands: &mut Vec<u32>, partials: &[u32], s: usize, kth: u32, from_all_rows: bool| {
                let row_suf = &row_suffix[s * rows..(s + 1) * rows];
                let keep_r = |r: usize| partials[r] as u64 + row_suf[r] as u64 >= kth as u64;
                if from_all_rows {
                    cands.clear();
                    cands.extend((0..rows).filter(|&r| keep_r(r)).map(|r| r as u32));
                } else {
                    cands.retain(|&r| keep_r(r as usize));
                }
                if cands.len() > k {
                    if !q_suffix_ready {
                        suffix_ones(qw, ends, &mut q_suffix);
                        q_suffix_ready = true;
                    }
                    let qs = q_suffix[s];
                    cands.retain(|&r| {
                        let r = r as usize;
                        partials[r] as u64 + qs.min(row_suf[r]) as u64 >= kth as u64
                    });
                }
            };
        prune(&mut cands, partials, 0, kth, true);
        for s in 1..stages {
            score_stage(s, gq, &cands, partials);
            stats.stage_rows[s] += cands.len() as u64;
            stats.activated_dims += (cands.len() * (ends[s] - ends[s - 1])) as u64;
            if s + 1 == stages {
                break;
            }
            kth = kth_score(cands.iter().map(|&r| partials[r as usize]), k, &mut kbuf);
            prune(&mut cands, partials, s, kth, false);
        }
        // After the final stage every survivor holds its exact score and
        // the shortlist provably contains the true top-k rows; `cands`
        // stays in ascending row order, so the bounded insert reproduces
        // the workspace tie-break.
        select(cands.iter().map(|&r| r as usize), partials, slots);
    }
}

/// Contiguous-memory continuation: the shared pruning skeleton with a
/// row-major stage scorer. `multi` is the multi-row word-slice popcount
/// kernel (the active-backend dispatcher in production; an explicit
/// backend's table entry under test): one call per (query, stage) scores
/// the whole shortlist, so the SIMD path shares each staged-query load
/// across rows instead of re-streaming it per flat-kernel call.
#[allow(clippy::too_many_arguments)]
fn continuation_range<M: Fn(&[u64], &[&[u64]], &mut [u32])>(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    row_suffix: &[u32],
    q_offset: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
    multi: M,
) {
    let ends = plan.ends();
    let mut qmasked: Vec<u64> = Vec::new();
    let mut row_refs: Vec<&[u64]> = Vec::new();
    let mut acc: Vec<u32> = Vec::new();
    prune_continuation_range(
        m.rows(),
        ends,
        row_suffix,
        batch,
        q_offset,
        scores,
        out,
        stats,
        |k, gq, cands, partials| {
            let (lo, hi) = (ends[k - 1], ends[k]);
            let qs = stage_query(batch.query_words(gq), lo, hi, m.cols(), &mut qmasked);
            let (wlo, whi) = (lo / 64, word_end(hi));
            row_refs.clear();
            row_refs.extend(cands.iter().map(|&r| &m.row_words_pub(r as usize)[wlo..whi]));
            acc.clear();
            acc.resize(cands.len(), 0);
            multi(qs, &row_refs, &mut acc);
            let mut best = 0;
            for (&r, &d) in cands.iter().zip(&acc) {
                let r = r as usize;
                let s = partials[r] + d;
                partials[r] = s;
                if s > best {
                    best = s;
                }
            }
            best
        },
    );
}

/// Contiguous-memory top-k continuation: [`prune_continuation_topk_range`]
/// with the same multi-row stage scorer as [`continuation_range`].
#[allow(clippy::too_many_arguments)]
fn continuation_topk_range<M: Fn(&[u64], &[&[u64]], &mut [u32])>(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    row_suffix: &[u32],
    k: usize,
    q_offset: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
    multi: M,
) {
    let ends = plan.ends();
    let mut qmasked: Vec<u64> = Vec::new();
    let mut row_refs: Vec<&[u64]> = Vec::new();
    let mut acc: Vec<u32> = Vec::new();
    prune_continuation_topk_range(
        m.rows(),
        ends,
        row_suffix,
        batch,
        k,
        q_offset,
        scores,
        out,
        stats,
        |s, gq, cands, partials| {
            let (lo, hi) = (ends[s - 1], ends[s]);
            let qs = stage_query(batch.query_words(gq), lo, hi, m.cols(), &mut qmasked);
            let (wlo, whi) = (lo / 64, word_end(hi));
            row_refs.clear();
            row_refs.extend(cands.iter().map(|&r| &m.row_words_pub(r as usize)[wlo..whi]));
            acc.clear();
            acc.resize(cands.len(), 0);
            multi(qs, &row_refs, &mut acc);
            for (&r, &d) in cands.iter().zip(&acc) {
                partials[r as usize] += d;
            }
        },
    );
}

/// Row suffix popcounts at every stage boundary (`row_suffix[k * rows +
/// r]` = ones of row `r` after stage `k`): a property of the stored
/// memory (known when a hardware array is programmed), computed once per
/// search and amortized over the whole batch.
fn row_suffix_table(m: &BitMatrix, ends: &[usize]) -> Vec<u32> {
    let rows = m.rows();
    let stages = ends.len();
    let mut table = vec![0u32; stages * rows];
    if stages > 1 {
        let mut scratch = vec![0u32; stages];
        for r in 0..rows {
            suffix_ones(m.row_words_pub(r), ends, &mut scratch);
            for (k, &s) in scratch.iter().enumerate() {
                table[k * rows + r] = s;
            }
        }
    }
    table
}

/// Pruning continuation + telemetry over precomputed stage-0 scores —
/// the shared tail of every active-backend entry point.
fn cascade_run(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    mut scores: ScoreMatrix,
    row_suffix: &[u32],
) -> CascadeResults {
    let rows = m.rows();
    let q_total = batch.len();
    let mut winners = vec![(0usize, 0u32); q_total];
    let mut stats = CascadeStats::zeroed(rows, m.cols(), plan.stages());
    stats.stage_rows[0] = (q_total * rows) as u64;
    stats.activated_dims = (q_total * rows * plan.ends()[0]) as u64;
    chunked_continuation(
        rows,
        m.cols(),
        m.words_per_row_pub(),
        plan.stages(),
        1,
        scores.data_mut(),
        &mut winners,
        &mut stats,
        |q_offset, score_chunk, winner_chunk, local| {
            continuation_range(
                m,
                batch,
                plan,
                row_suffix,
                q_offset,
                score_chunk,
                winner_chunk,
                local,
                multi_dot_words,
            )
        },
    );
    CascadeResults { winners, stats }
}

/// Top-k pruning continuation + telemetry over precomputed stage-0
/// scores — the shared tail of every top-k entry point. `k` is the
/// caller's request; lists are clamped to the row count.
fn cascade_run_topk(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    mut scores: ScoreMatrix,
    row_suffix: &[u32],
    k: usize,
) -> CascadeTopK {
    let rows = m.rows();
    let q_total = batch.len();
    let per_query = k.min(rows);
    let mut entries = vec![(0usize, 0u32); q_total * per_query];
    let mut stats = CascadeStats::zeroed(rows, m.cols(), plan.stages());
    stats.stage_rows[0] = (q_total * rows) as u64;
    stats.activated_dims = (q_total * rows * plan.ends()[0]) as u64;
    chunked_continuation(
        rows,
        m.cols(),
        m.words_per_row_pub(),
        plan.stages(),
        per_query,
        scores.data_mut(),
        &mut entries,
        &mut stats,
        |q_offset, score_chunk, out_chunk, local| {
            continuation_topk_range(
                m,
                batch,
                plan,
                row_suffix,
                per_query,
                q_offset,
                score_chunk,
                out_chunk,
                local,
                multi_dot_words,
            )
        },
    );
    CascadeTopK { topk: TopK::from_flat(q_total, k, per_query, entries), stats }
}

/// Full cascade on the active backend: tiled stage-0 sweep, then the
/// pruning continuation (thread-chunked under the `rayon` feature). The
/// prefix sub-memory and row-suffix table are rebuilt per call; batch
/// after batch against one memory should go through
/// [`SearchMemory::search_cascade`] (which caches the derived bound form
/// per plan) or an explicit [`BoundCascade`] handle.
fn cascade_active(m: &BitMatrix, batch: &QueryBatch, plan: &CascadePlan) -> CascadeResults {
    let scores = stage0_scores(m, batch, plan.ends()[0]);
    let row_suffix = row_suffix_table(m, plan.ends());
    cascade_run(m, batch, plan, scores, &row_suffix)
}

/// Top-k analogue of [`cascade_active`]: per-call derivation, then the
/// k-th-score pruning continuation.
fn cascade_active_topk(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    k: usize,
) -> CascadeTopK {
    let scores = stage0_scores(m, batch, plan.ends()[0]);
    let row_suffix = row_suffix_table(m, plan.ends());
    cascade_run_topk(m, batch, plan, scores, &row_suffix, k)
}

/// The per-(plan, memory) derived artifacts of a cascade: the stage-0
/// prefix sub-memory (pre-packed for the active SIMD backend) and the
/// row-suffix table. Deriving one costs a pass over the memory; every
/// cached search reuses it for free.
#[derive(Debug)]
pub(crate) struct BoundForm {
    /// Stage boundaries this form was derived for (the cache key).
    ends: Vec<usize>,
    /// Boundary-masked stage-0 sub-memory; `None` when stage 0 covers the
    /// full width (the bound memory's own packed form serves directly).
    prefix: Option<SearchMemory>,
    row_suffix: Vec<u32>,
}

impl BoundForm {
    fn derive(m: &BitMatrix, plan: &CascadePlan) -> Self {
        let e0 = plan.ends()[0];
        let prefix = (e0 != m.cols()).then(|| SearchMemory::new(prefix_matrix(m, e0)));
        BoundForm {
            ends: plan.ends().to_vec(),
            prefix,
            row_suffix: row_suffix_table(m, plan.ends()),
        }
    }

    /// Stage-0 partial scores through the pre-derived prefix sub-memory
    /// (or the memory's own packed form for a full-width stage 0).
    fn stage0_scores(&self, memory: &SearchMemory, batch: &QueryBatch) -> ScoreMatrix {
        match &self.prefix {
            Some(prefix) => {
                let mut out = ScoreMatrix::zeros(batch.len(), memory.rows());
                batch::dot_batch_dispatch(prefix.memory_ref(), batch, &mut out);
                out
            }
            None => memory.dot_batch(batch).expect("dimensions validated by caller"),
        }
    }
}

/// How many distinct plans a memory caches bound forms for. Repeated-batch
/// loops use one plan (sometimes one tuned + one hand-picked); anything
/// past a handful is churn, and each form costs a prefix copy of the
/// memory.
const BOUND_CACHE_CAP: usize = 4;

/// Per-memory cache of [`BoundForm`]s, keyed by plan stage boundaries and
/// kept in most-recently-used order. Attached to every [`SearchMemory`];
/// invalidated whenever the memory mutates (see
/// [`SearchMemory::modify_reporting`]). Interior mutability keeps
/// [`SearchMemory::search_cascade`] a `&self` call.
pub(crate) struct CascadeCache {
    entries: Mutex<Vec<Arc<BoundForm>>>,
}

impl CascadeCache {
    pub(crate) fn new() -> Self {
        CascadeCache { entries: Mutex::new(Vec::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Arc<BoundForm>>> {
        // A panic while holding the lock leaves at worst a stale LRU
        // order or a missing entry — both benign — so recover instead of
        // propagating the poison.
        self.entries.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Drops every derived form (the memory's bits changed).
    pub(crate) fn invalidate(&self) {
        self.lock().clear();
    }

    /// Cached forms currently held (test introspection).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.lock().len()
    }

    /// Returns the cached form for `plan`, deriving and inserting it on a
    /// miss (evicting the least-recently-used entry at capacity).
    /// Derivation runs **outside** the lock — an O(rows × dim) pass must
    /// not serialize concurrent searchers' cache hits — so two threads
    /// missing the same plan may both derive; the loser adopts the
    /// winner's already-inserted form.
    pub(crate) fn get_or_derive(&self, m: &BitMatrix, plan: &CascadePlan) -> Arc<BoundForm> {
        if let Some(form) = self.touch(plan) {
            return form;
        }
        let form = Arc::new(BoundForm::derive(m, plan));
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|f| f.ends == plan.ends) {
            // Lost the derivation race: keep the inserted form (callers
            // holding it stay coherent with the cache) and drop ours.
            let existing = entries.remove(pos);
            entries.push(Arc::clone(&existing));
            return existing;
        }
        if entries.len() == BOUND_CACHE_CAP {
            entries.remove(0);
        }
        entries.push(Arc::clone(&form));
        form
    }

    /// Looks up `plan`'s form, refreshing its LRU position on a hit.
    fn touch(&self, plan: &CascadePlan) -> Option<Arc<BoundForm>> {
        let mut entries = self.lock();
        let pos = entries.iter().position(|f| f.ends == plan.ends)?;
        let form = entries.remove(pos);
        entries.push(Arc::clone(&form));
        Some(form)
    }
}

impl std::fmt::Debug for CascadeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CascadeCache").field("entries", &self.lock().len()).finish()
    }
}

/// A cascade plan explicitly bound to one shared memory: a cheap handle
/// over the same per-(plan, memory) bound form that
/// [`SearchMemory::search_cascade`] caches internally. Constructing one
/// warms the memory's cache, pins the derived artifacts for the handle's
/// lifetime (immune to cache eviction), and carries the `Arc` a serving
/// thread needs — this is what `hd_serve`'s cascade adapters hold.
///
/// One-shot callers can simply call [`SearchMemory::search_cascade`]:
/// since the cache landed there, repeated batches against the same
/// memory and plan reuse the derived form either way.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitVector, BoundCascade, CascadePlan, QueryBatch, SearchMemory};
/// use std::sync::Arc;
///
/// let rows: Vec<BitVector> =
///     (0..8).map(|r| BitVector::from_bools(&[r % 2 == 0, true, false, r % 3 == 0])).collect();
/// let memory = Arc::new(SearchMemory::from_rows(&rows).unwrap());
/// let bound = BoundCascade::new(Arc::clone(&memory), CascadePlan::prefix(4, 2).unwrap()).unwrap();
/// let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 4])]).unwrap();
/// assert_eq!(bound.search(&batch).unwrap().winners(), memory.winners_batch(&batch).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct BoundCascade {
    memory: Arc<SearchMemory>,
    plan: CascadePlan,
    form: Arc<BoundForm>,
}

impl BoundCascade {
    /// Binds `plan` to `memory`, deriving (or reusing from the memory's
    /// cache) the stage-0 prefix sub-memory and the row-suffix table.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a memory with no rows and
    /// [`LinalgError::ShapeMismatch`] when the plan's dimensionality
    /// differs from the memory's.
    pub fn new(memory: Arc<SearchMemory>, plan: CascadePlan) -> Result<Self> {
        let m = memory.matrix();
        if m.rows() == 0 {
            return Err(LinalgError::Empty { op: "BoundCascade::new" });
        }
        if plan.dim() != m.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "BoundCascade::new",
                expected: m.cols(),
                found: plan.dim(),
            });
        }
        // One-stage plans derive nothing worth caching (no prefix
        // sub-memory, an all-zero suffix table); keep them out of the
        // memory's LRU slots, mirroring `SearchMemory::search_cascade`.
        let form = if plan.stages() == 1 {
            Arc::new(BoundForm::derive(m, &plan))
        } else {
            memory.cascade_cache().get_or_derive(m, &plan)
        };
        Ok(BoundCascade { memory, plan, form })
    }

    /// The bound stage plan.
    pub fn plan(&self) -> &CascadePlan {
        &self.plan
    }

    /// The bound memory.
    pub fn memory(&self) -> &SearchMemory {
        &self.memory
    }

    /// Cascade search over the bound memory — bit-identical winners to
    /// [`SearchMemory::winners_batch`], with no per-call re-derivation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the batch
    /// dimensionality differs from the memory's.
    pub fn search(&self, batch: &QueryBatch) -> Result<CascadeResults> {
        let m = self.memory.matrix();
        if batch.dim() != m.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "BoundCascade::search",
                expected: m.cols(),
                found: batch.dim(),
            });
        }
        let scores = self.form.stage0_scores(&self.memory, batch);
        Ok(cascade_run(m, batch, &self.plan, scores, &self.form.row_suffix))
    }

    /// Top-k cascade search over the bound memory — bit-identical lists
    /// to [`SearchMemory::topk_batch`] (score desc, row asc), with no
    /// per-call re-derivation. `k` is clamped to the row count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for `k == 0` and
    /// [`LinalgError::ShapeMismatch`] when the batch dimensionality
    /// differs from the memory's.
    pub fn search_topk(&self, batch: &QueryBatch, k: usize) -> Result<CascadeTopK> {
        if k == 0 {
            return Err(LinalgError::Empty { op: "BoundCascade::search_topk" });
        }
        let m = self.memory.matrix();
        if batch.dim() != m.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "BoundCascade::search_topk",
                expected: m.cols(),
                found: batch.dim(),
            });
        }
        let scores = self.form.stage0_scores(&self.memory, batch);
        Ok(cascade_run_topk(m, batch, &self.plan, scores, &self.form.row_suffix, k))
    }
}

/// Runs a cascade continuation over all queries, chunked across scoped
/// threads under the `rayon` feature: each chunk owns disjoint score and
/// output slices plus its own telemetry, merged after the join —
/// bit-identical to the serial order because queries are independent.
/// `out` holds `slots_per_query` entries per query (1 for winners, k for
/// top-k lists); `run(q_offset, scores, out, stats)` must process the
/// chunk's queries exactly as the serial call would. Stage-0 counters are
/// set wholesale by the caller and stay 0 in every chunk-local
/// (continuations never write stage 0), so the general merge adds exactly
/// the later stages.
#[cfg(feature = "rayon")]
#[allow(clippy::too_many_arguments)]
fn chunked_continuation<F>(
    rows: usize,
    dim: usize,
    words_per_row: usize,
    stages: usize,
    slots_per_query: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
    run: F,
) where
    F: Fn(usize, &mut [u32], &mut [(usize, u32)], &mut CascadeStats) + Sync,
{
    let q = out.len() / slots_per_query;
    let work = q * rows * words_per_row;
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if threads < 2 || work < batch::PARALLEL_THRESHOLD || q < 2 * batch::QUERY_TILE {
        run(0, scores, out, stats);
        return;
    }
    let chunks = threads.min(q.div_ceil(batch::QUERY_TILE));
    let per_chunk = q.div_ceil(chunks).next_multiple_of(batch::QUERY_TILE);
    type Job<'a> = (usize, &'a mut [u32], &'a mut [(usize, u32)]);
    let mut jobs: Vec<Job<'_>> = Vec::with_capacity(chunks);
    let mut score_rest = scores;
    let mut out_rest = out;
    let mut offset = 0usize;
    while !out_rest.is_empty() {
        let take = per_chunk.min(out_rest.len() / slots_per_query);
        let (o_head, o_tail) = out_rest.split_at_mut(take * slots_per_query);
        let (s_head, s_tail) = score_rest.split_at_mut(take * rows);
        jobs.push((offset, s_head, o_head));
        out_rest = o_tail;
        score_rest = s_tail;
        offset += take;
    }
    let run = &run;
    let locals: Vec<CascadeStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(q_offset, score_chunk, out_chunk)| {
                scope.spawn(move || {
                    let mut local = CascadeStats::zeroed(rows, dim, stages);
                    run(q_offset, score_chunk, out_chunk, &mut local);
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("cascade chunk worker panicked")).collect()
    });
    for local in &locals {
        stats.merge(local);
    }
}

/// Serial fallback of the chunked continuation (no `rayon` feature).
#[cfg(not(feature = "rayon"))]
#[allow(clippy::too_many_arguments)]
fn chunked_continuation<F>(
    _rows: usize,
    _dim: usize,
    _words_per_row: usize,
    _stages: usize,
    _slots_per_query: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
    run: F,
) where
    F: Fn(usize, &mut [u32], &mut [(usize, u32)], &mut CascadeStats),
{
    run(0, scores, out, stats);
}

/// A cascade plan bound to a **column-segmented** memory: `P` equal-width
/// segment memories where segment `p` of logical row `r` holds dimensions
/// `[p·seg_len, (p+1)·seg_len)` — the layout `imc_sim`'s partitioned
/// mappings store (one [`SearchMemory`] per partition). Stage boundaries
/// must land on segment boundaries (snap a tuned plan with
/// [`CascadePlan::snapped`]): a prefix of logical dimensions is then a
/// prefix of whole segments, so stage 0 runs each covered partition's
/// tiled SIMD sweep and the pruning continuation finishes survivors
/// segment by segment. Winners (scores and the low-row tie-break
/// included) are bit-identical to accumulating every partition's exact
/// scores.
///
/// The handle owns the per-(plan, layout) derived artifact — the logical
/// row-suffix table assembled from per-partition row popcounts — so
/// repeated batches skip the derivation. The segment memories themselves
/// stay with the caller (who owns and may mutate them): pass the **same**
/// partitions to every [`SegmentedCascade::search`] call, and re-derive
/// the handle when their bits change. `imc_sim::AmMapping` wraps exactly
/// that contract, invalidating its cached handle on fault injection.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitVector, CascadePlan, QueryBatch, SearchMemory, SegmentedCascade};
///
/// // Two 4-bit segments of three 8-bit logical rows.
/// let rows: Vec<BitVector> =
///     (0..3).map(|r| BitVector::from_bools(&vec![r != 1; 8])).collect();
/// let parts: Vec<SearchMemory> = (0..2)
///     .map(|p| {
///         let segs: Vec<BitVector> = rows.iter().map(|row| row.slice(p * 4, 4)).collect();
///         SearchMemory::from_rows(&segs).unwrap()
///     })
///     .collect();
/// let plan = CascadePlan::prefix(8, 4).unwrap(); // boundary on the segment seam
/// let cascade = SegmentedCascade::new(&parts, &plan).unwrap();
/// let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 8])]).unwrap();
/// let results = cascade.search(&parts, &batch).unwrap();
/// assert_eq!(results.winner(0), (0, 8));
/// ```
#[derive(Debug, Clone)]
pub struct SegmentedCascade {
    plan: CascadePlan,
    rows: usize,
    seg_len: usize,
    /// Logical row-suffix popcounts at every stage boundary, assembled
    /// from per-partition row popcounts (layout: `stages × rows`, like
    /// the contiguous table).
    row_suffix: Vec<u32>,
    /// Total popcount of every partition at derivation time — a cheap
    /// staleness fingerprint: debug builds assert it against the
    /// partitions passed to [`SegmentedCascade::search`], catching
    /// callers that mutated a segment (or swapped in a different
    /// same-shape layout) without re-deriving the handle.
    ones_fingerprint: u64,
}

impl SegmentedCascade {
    /// Derives the handle for `plan` over the segment memories.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for no partitions / empty
    /// partitions and [`LinalgError::ShapeMismatch`] when partitions
    /// disagree on shape, the plan's dimensionality is not
    /// `partitions × seg_len`, or an interior stage boundary is not a
    /// multiple of the segment length (`op:
    /// "SegmentedCascade stage boundary"`, with the offending boundary
    /// as `found`).
    pub fn new(parts: &[SearchMemory], plan: &CascadePlan) -> Result<Self> {
        let (rows, seg_len) = check_segments(parts, plan)?;
        let stages = plan.stages();
        let ends = plan.ends();
        let mut row_suffix = vec![0u32; stages * rows];
        if stages > 1 {
            // Suffix-accumulate whole partitions from the back: segment
            // popcounts are a property of the programmed layout, computed
            // once here and reused by every search.
            let mut acc = vec![0u32; rows];
            let mut next_part = parts.len();
            for k in (0..stages).rev() {
                let boundary_seg = ends[k] / seg_len;
                while next_part > boundary_seg {
                    next_part -= 1;
                    let m = parts[next_part].matrix();
                    for (r, slot) in acc.iter_mut().enumerate() {
                        *slot += m.row_words_pub(r).iter().map(|w| w.count_ones()).sum::<u32>();
                    }
                }
                row_suffix[k * rows..(k + 1) * rows].copy_from_slice(&acc);
            }
        }
        Ok(SegmentedCascade {
            plan: plan.clone(),
            rows,
            seg_len,
            row_suffix,
            ones_fingerprint: segments_fingerprint(parts),
        })
    }

    /// The bound stage plan.
    pub fn plan(&self) -> &CascadePlan {
        &self.plan
    }

    /// Cascade search over the segment memories the handle was derived
    /// from. Winners are bit-identical to summing every partition's
    /// exact scores and taking the low-row argmax.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `parts` disagrees
    /// with the bound layout or the batch dimensionality differs from
    /// the plan's, and [`LinalgError::Empty`] for empty partitions.
    pub fn search(&self, parts: &[SearchMemory], batch: &QueryBatch) -> Result<CascadeResults> {
        let (mut scores, seg_batches) = self.stage0_setup(parts, batch)?;
        let (rows, seg_len) = (self.rows, self.seg_len);
        let q = batch.len();
        let ends = self.plan.ends();
        let stages = ends.len();
        let mut winners = vec![(0usize, 0u32); q];
        let mut stats = CascadeStats::zeroed(rows, self.plan.dim(), stages);
        stats.stage_rows[0] = (q * rows) as u64;
        stats.activated_dims = (q * rows * ends[0]) as u64;
        chunked_continuation(
            rows,
            self.plan.dim(),
            self.plan.dim().div_ceil(64),
            stages,
            1,
            scores.data_mut(),
            &mut winners,
            &mut stats,
            |q_offset, score_chunk, winner_chunk, local| {
                segmented_continuation_range(
                    parts,
                    &seg_batches,
                    batch,
                    seg_len,
                    ends,
                    &self.row_suffix,
                    q_offset,
                    score_chunk,
                    winner_chunk,
                    local,
                )
            },
        );
        Ok(CascadeResults { winners, stats })
    }

    /// Top-k cascade search over the segment memories — per-query k-best
    /// lists bit-identical to summing every partition's exact scores and
    /// selecting with the score-desc/row-asc order. `k` is clamped to
    /// the row count.
    ///
    /// # Errors
    ///
    /// As [`SegmentedCascade::search`], plus [`LinalgError::Empty`] for
    /// `k == 0`.
    pub fn search_topk(
        &self,
        parts: &[SearchMemory],
        batch: &QueryBatch,
        k: usize,
    ) -> Result<CascadeTopK> {
        if k == 0 {
            return Err(LinalgError::Empty { op: "SegmentedCascade::search_topk" });
        }
        let (mut scores, seg_batches) = self.stage0_setup(parts, batch)?;
        let (rows, seg_len) = (self.rows, self.seg_len);
        let q = batch.len();
        let ends = self.plan.ends();
        let stages = ends.len();
        let per_query = k.min(rows);
        let mut entries = vec![(0usize, 0u32); q * per_query];
        let mut stats = CascadeStats::zeroed(rows, self.plan.dim(), stages);
        stats.stage_rows[0] = (q * rows) as u64;
        stats.activated_dims = (q * rows * ends[0]) as u64;
        chunked_continuation(
            rows,
            self.plan.dim(),
            self.plan.dim().div_ceil(64),
            stages,
            per_query,
            scores.data_mut(),
            &mut entries,
            &mut stats,
            |q_offset, score_chunk, out_chunk, local| {
                segmented_continuation_topk_range(
                    parts,
                    &seg_batches,
                    batch,
                    seg_len,
                    ends,
                    &self.row_suffix,
                    per_query,
                    q_offset,
                    score_chunk,
                    out_chunk,
                    local,
                )
            },
        );
        Ok(CascadeTopK { topk: TopK::from_flat(q, k, per_query, entries), stats })
    }

    /// The shared head of [`SegmentedCascade::search`] and
    /// [`SegmentedCascade::search_topk`]: validation, staleness
    /// fingerprint, per-partition query segment batches, and the stage-0
    /// accumulated sweep.
    fn stage0_setup(
        &self,
        parts: &[SearchMemory],
        batch: &QueryBatch,
    ) -> Result<(ScoreMatrix, Arc<[QueryBatch]>)> {
        let (rows, seg_len) = check_segments(parts, &self.plan)?;
        if rows != self.rows || seg_len != self.seg_len {
            return Err(LinalgError::ShapeMismatch {
                op: "SegmentedCascade::search",
                expected: self.rows,
                found: rows,
            });
        }
        if batch.dim() != self.plan.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "SegmentedCascade::search",
                expected: self.plan.dim(),
                found: batch.dim(),
            });
        }
        // The row-suffix table describes the bits the handle was derived
        // from; a mutated or swapped segment set would make the pruning
        // bound lie. Cheap popcount fingerprint, debug builds only.
        debug_assert_eq!(
            segments_fingerprint(parts),
            self.ones_fingerprint,
            "SegmentedCascade::search called with partitions whose bits changed since \
             SegmentedCascade::new — re-derive the handle"
        );
        let q = batch.len();
        let ends = self.plan.ends();
        let seg0_count = ends[0] / seg_len;

        // Per-partition query segment batches, via the batch's cached
        // segmented view: word-aligned segments are zero-copy windows
        // over the packed queries, unaligned ones were per-bit packed
        // exactly once — repeat searches over the same batch reuse the
        // same derivation instead of rebuilding it every flush.
        let seg_batches = batch.segments(seg_len)?;

        // Stage 0: every covered partition's full tiled sweep,
        // accumulated digitally — identical structure to the exact
        // partitioned batch search.
        let mut scores = ScoreMatrix::zeros(q, rows);
        let mut scratch = ScoreMatrix::zeros(0, 0);
        for (p, part) in parts.iter().enumerate().take(seg0_count) {
            if p == 0 {
                part.dot_batch_into(&seg_batches[p], &mut scores)
                    .expect("segment width matches partition matrix");
            } else {
                part.dot_batch_into(&seg_batches[p], &mut scratch)
                    .expect("segment width matches partition matrix");
                for i in 0..q {
                    let partials = scratch.scores(i);
                    for (dst, &s) in scores.scores_mut(i).iter_mut().zip(partials) {
                        *dst += s;
                    }
                }
            }
        }
        Ok((scores, seg_batches))
    }
}

/// Total popcount across every partition's rows — the staleness
/// fingerprint [`SegmentedCascade`] pins its derived tables to.
fn segments_fingerprint(parts: &[SearchMemory]) -> u64 {
    parts
        .iter()
        .map(|part| {
            let m = part.matrix();
            (0..m.rows())
                .map(|r| m.row_words_pub(r).iter().map(|w| w.count_ones() as u64).sum::<u64>())
                .sum::<u64>()
        })
        .sum()
}

/// Validates a segment set against a plan; returns `(rows, seg_len)`.
fn check_segments(parts: &[SearchMemory], plan: &CascadePlan) -> Result<(usize, usize)> {
    if parts.is_empty() {
        return Err(LinalgError::Empty { op: "SegmentedCascade partitions" });
    }
    let rows = parts[0].rows();
    let seg_len = parts[0].cols();
    if rows == 0 || seg_len == 0 {
        return Err(LinalgError::Empty { op: "SegmentedCascade partitions" });
    }
    for part in parts {
        if part.rows() != rows {
            return Err(LinalgError::ShapeMismatch {
                op: "SegmentedCascade segment rows",
                expected: rows,
                found: part.rows(),
            });
        }
        if part.cols() != seg_len {
            return Err(LinalgError::ShapeMismatch {
                op: "SegmentedCascade segment width",
                expected: seg_len,
                found: part.cols(),
            });
        }
    }
    let dim = seg_len * parts.len();
    if plan.dim() != dim {
        return Err(LinalgError::ShapeMismatch {
            op: "SegmentedCascade plan",
            expected: dim,
            found: plan.dim(),
        });
    }
    for &e in &plan.ends()[..plan.stages() - 1] {
        if !e.is_multiple_of(seg_len) {
            return Err(LinalgError::ShapeMismatch {
                op: "SegmentedCascade stage boundary",
                expected: seg_len,
                found: e,
            });
        }
    }
    Ok((rows, seg_len))
}

/// The segmented analogue of [`continuation_range`]: the same shared
/// pruning skeleton ([`prune_continuation_range`] — row suffixes from
/// the pre-derived table, query suffixes lazily from the full-width
/// query words, which stage boundaries slice contiguously), with a stage
/// scorer that collects each shortlist row's contribution partition by
/// partition.
#[allow(clippy::too_many_arguments)]
fn segmented_continuation_range(
    parts: &[SearchMemory],
    seg_batches: &[QueryBatch],
    batch: &QueryBatch,
    seg_len: usize,
    ends: &[usize],
    row_suffix: &[u32],
    q_offset: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
) {
    let mut row_refs: Vec<&[u64]> = Vec::new();
    let mut acc: Vec<u32> = Vec::new();
    prune_continuation_range(
        parts[0].rows(),
        ends,
        row_suffix,
        batch,
        q_offset,
        scores,
        out,
        stats,
        |k, gq, cands, partials| {
            let (lo, hi) = (ends[k - 1], ends[k]);
            let (p_lo, p_hi) = (lo / seg_len, hi / seg_len);
            acc.clear();
            acc.resize(cands.len(), 0);
            for (p, part) in parts.iter().enumerate().take(p_hi).skip(p_lo) {
                let qs: &[u64] = seg_batches[p].query_words(gq);
                let pm = part.matrix();
                row_refs.clear();
                row_refs.extend(cands.iter().map(|&r| pm.row_words_pub(r as usize)));
                multi_dot_words(qs, &row_refs, &mut acc);
            }
            let mut best = 0;
            for (&r, &d) in cands.iter().zip(&acc) {
                let r = r as usize;
                let s = partials[r] + d;
                partials[r] = s;
                if s > best {
                    best = s;
                }
            }
            best
        },
    );
}

/// The segmented analogue of [`continuation_topk_range`]: the top-k
/// pruning skeleton with the partition-by-partition stage scorer of
/// [`segmented_continuation_range`].
#[allow(clippy::too_many_arguments)]
fn segmented_continuation_topk_range(
    parts: &[SearchMemory],
    seg_batches: &[QueryBatch],
    batch: &QueryBatch,
    seg_len: usize,
    ends: &[usize],
    row_suffix: &[u32],
    k: usize,
    q_offset: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
) {
    let mut row_refs: Vec<&[u64]> = Vec::new();
    let mut acc: Vec<u32> = Vec::new();
    prune_continuation_topk_range(
        parts[0].rows(),
        ends,
        row_suffix,
        batch,
        k,
        q_offset,
        scores,
        out,
        stats,
        |s, gq, cands, partials| {
            let (lo, hi) = (ends[s - 1], ends[s]);
            let (p_lo, p_hi) = (lo / seg_len, hi / seg_len);
            acc.clear();
            acc.resize(cands.len(), 0);
            for (p, part) in parts.iter().enumerate().take(p_hi).skip(p_lo) {
                let qs: &[u64] = seg_batches[p].query_words(gq);
                let pm = part.matrix();
                row_refs.clear();
                row_refs.extend(cands.iter().map(|&r| pm.row_words_pub(r as usize)));
                multi_dot_words(qs, &row_refs, &mut acc);
            }
            for (&r, &d) in cands.iter().zip(&acc) {
                partials[r as usize] += d;
            }
        },
    );
}

fn check_cascade(m: &BitMatrix, batch: &QueryBatch, plan: &CascadePlan) -> Result<()> {
    if m.rows() == 0 {
        return Err(LinalgError::Empty { op: "search_cascade" });
    }
    if batch.dim() != m.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "search_cascade",
            expected: m.cols(),
            found: batch.dim(),
        });
    }
    if plan.dim() != m.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "search_cascade(plan)",
            expected: m.cols(),
            found: plan.dim(),
        });
    }
    Ok(())
}

impl BitMatrix {
    /// Progressive-precision batched search: prefix-scores every row
    /// with the tiled batched kernels, prunes rows that provably cannot
    /// win (Hamming bound), and finishes only the survivors. Winners
    /// (rows, scores, and the low-row tie-break) are bit-identical to
    /// [`BitMatrix::winners_batch`]; the returned [`CascadeStats`]
    /// reports how many row-dimensions were activated.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the batch or plan
    /// dimensionality differs from `cols`, and [`LinalgError::Empty`]
    /// for a memory with no rows.
    pub fn search_cascade(&self, batch: &QueryBatch, plan: &CascadePlan) -> Result<CascadeResults> {
        check_cascade(self, batch, plan)?;
        Ok(cascade_active(self, batch, plan))
    }

    /// Top-k cascade search: per-query k-best `(row, score)` lists
    /// bit-identical to [`BitMatrix::topk_batch`] (score desc, row asc),
    /// pruned against each query's running k-th-best score instead of
    /// the single best. `k` is clamped to the row count.
    ///
    /// # Errors
    ///
    /// As [`BitMatrix::search_cascade`], plus [`LinalgError::Empty`] for
    /// `k == 0`.
    pub fn search_cascade_topk(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
        k: usize,
    ) -> Result<CascadeTopK> {
        if k == 0 {
            return Err(LinalgError::Empty { op: "search_cascade_topk" });
        }
        check_cascade(self, batch, plan)?;
        Ok(cascade_active_topk(self, batch, plan, k))
    }
}

impl SearchMemory {
    /// [`BitMatrix::search_cascade`] over this memory's rows. Stage 0
    /// runs the tiled batched sweep over the (boundary-masked) dimension
    /// prefix of every row; the shortlist stages use row-major candidate
    /// access, so wide rows still ride the active SIMD backend through
    /// the flat word kernels.
    ///
    /// The plan's derived artifacts (prefix sub-memory, row-suffix
    /// table) are cached on this memory keyed by the plan's stage
    /// boundaries, so repeated-batch loops — QAT epochs, eval sweeps,
    /// serving flushes — derive them once per (plan, memory) instead of
    /// once per call. Any mutation through [`SearchMemory::modify`] /
    /// [`SearchMemory::modify_reporting`] invalidates the cache, and the
    /// next search re-derives against the new bits.
    ///
    /// # Errors
    ///
    /// As [`BitMatrix::search_cascade`].
    pub fn search_cascade(&self, batch: &QueryBatch, plan: &CascadePlan) -> Result<CascadeResults> {
        let m = self.matrix();
        check_cascade(m, batch, plan)?;
        if plan.stages() == 1 {
            // Degenerate plan on a pre-packed memory: reuse the blocked
            // mirror directly instead of re-packing a full-width prefix
            // (nothing worth caching is derived).
            let scores = self.dot_batch(batch)?;
            return Ok(cascade_run(m, batch, plan, scores, &[]));
        }
        let form = self.cascade_cache().get_or_derive(m, plan);
        let scores = form.stage0_scores(self, batch);
        Ok(cascade_run(m, batch, plan, scores, &form.row_suffix))
    }

    /// [`BitMatrix::search_cascade_topk`] over this memory's rows, with
    /// the same per-(plan, memory) bound-form caching as
    /// [`SearchMemory::search_cascade`] — repeated-batch top-k loops
    /// derive the prefix sub-memory and row-suffix table once.
    ///
    /// # Errors
    ///
    /// As [`BitMatrix::search_cascade_topk`].
    pub fn search_cascade_topk(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
        k: usize,
    ) -> Result<CascadeTopK> {
        if k == 0 {
            return Err(LinalgError::Empty { op: "search_cascade_topk" });
        }
        let m = self.matrix();
        check_cascade(m, batch, plan)?;
        if plan.stages() == 1 {
            // Degenerate plan on a pre-packed memory: reuse the blocked
            // mirror directly instead of re-packing a full-width prefix.
            let scores = self.dot_batch(batch)?;
            return Ok(cascade_run_topk(m, batch, plan, scores, &[], k));
        }
        let form = self.cascade_cache().get_or_derive(m, plan);
        let scores = form.stage0_scores(self, batch);
        Ok(cascade_run_topk(m, batch, plan, scores, &form.row_suffix, k))
    }

    /// [`SearchMemory::search_cascade`] on an explicit backend — the
    /// equivalence-testing hook (serial; no thread chunking; stage 0
    /// runs per-row through the backend's flat word kernel instead of
    /// its tiled sweep, which is bit-identical by the kernel contract).
    ///
    /// # Errors
    ///
    /// As [`BitMatrix::search_cascade`].
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable on this host.
    pub fn search_cascade_with(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
        backend: Backend,
    ) -> Result<CascadeResults> {
        assert!(backend.is_available(), "backend {backend} not available on this host");
        let m = self.matrix();
        check_cascade(m, batch, plan)?;
        let table = kernel::table_for(backend);
        let dot = |a: &[u64], b: &[u64]| (table.dot_words)(a, b);
        let rows = m.rows();
        let q_total = batch.len();
        let ends = plan.ends();
        let e0 = ends[0];
        let w0 = word_end(e0);
        // Serial stage 0 through the explicit backend's flat kernel.
        let mut scores = vec![0u32; q_total * rows];
        let mut qmasked = Vec::new();
        for q in 0..q_total {
            mask_stage(batch.query_words(q), 0, e0, &mut qmasked);
            let out_row = &mut scores[q * rows..(q + 1) * rows];
            for (r, slot) in out_row.iter_mut().enumerate() {
                *slot = dot(&m.row_words_pub(r)[..w0], &qmasked);
            }
        }
        let row_suffix = row_suffix_table(m, ends);
        let mut winners = vec![(0usize, 0u32); q_total];
        let mut stats = CascadeStats::zeroed(rows, m.cols(), plan.stages());
        stats.stage_rows[0] = (q_total * rows) as u64;
        stats.activated_dims = (q_total * rows * e0) as u64;
        continuation_range(
            m,
            batch,
            plan,
            &row_suffix,
            0,
            &mut scores,
            &mut winners,
            &mut stats,
            |qs: &[u64], rs: &[&[u64]], out: &mut [u32]| (table.multi_dot_words)(qs, rs, out),
        );
        Ok(CascadeResults { winners, stats })
    }

    /// [`SearchMemory::search_cascade_topk`] on an explicit backend —
    /// the top-k analogue of [`SearchMemory::search_cascade_with`]
    /// (serial; no thread chunking; stage 0 per-row through the
    /// backend's flat word kernel, continuation through its multi-row
    /// kernel, both bit-identical by the kernel contract).
    ///
    /// # Errors
    ///
    /// As [`BitMatrix::search_cascade_topk`].
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable on this host.
    pub fn search_cascade_topk_with(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
        k: usize,
        backend: Backend,
    ) -> Result<CascadeTopK> {
        assert!(backend.is_available(), "backend {backend} not available on this host");
        let m = self.matrix();
        check_cascade(m, batch, plan)?;
        let table = kernel::table_for(backend);
        let rows = m.rows();
        let q_total = batch.len();
        let ends = plan.ends();
        let e0 = ends[0];
        let w0 = word_end(e0);
        // Serial stage 0 through the explicit backend's flat kernel.
        let mut scores = vec![0u32; q_total * rows];
        let mut qmasked = Vec::new();
        for q in 0..q_total {
            mask_stage(batch.query_words(q), 0, e0, &mut qmasked);
            let out_row = &mut scores[q * rows..(q + 1) * rows];
            for (r, slot) in out_row.iter_mut().enumerate() {
                *slot = (table.dot_words)(&m.row_words_pub(r)[..w0], &qmasked);
            }
        }
        let row_suffix = row_suffix_table(m, ends);
        let per_query = k.min(rows);
        let mut entries = vec![(0usize, 0u32); q_total * per_query];
        let mut stats = CascadeStats::zeroed(rows, m.cols(), plan.stages());
        stats.stage_rows[0] = (q_total * rows) as u64;
        stats.activated_dims = (q_total * rows * e0) as u64;
        continuation_topk_range(
            m,
            batch,
            plan,
            &row_suffix,
            per_query,
            0,
            &mut scores,
            &mut entries,
            &mut stats,
            |qs: &[u64], rs: &[&[u64]], out: &mut [u32]| (table.multi_dot_words)(qs, rs, out),
        );
        Ok(CascadeTopK { topk: TopK::from_flat(q_total, k, per_query, entries), stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::BitVector;
    use rand::Rng;

    fn random_bits(len: usize, rng: &mut rand::rngs::StdRng) -> BitVector {
        let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
        BitVector::from_bools(&bits)
    }

    #[test]
    fn plan_construction_and_validation() {
        let p = CascadePlan::from_widths(300, &[100, 100, 100]).unwrap();
        assert_eq!((p.dim(), p.stages()), (300, 3));
        assert_eq!(p.widths(), vec![100, 100, 100]);
        assert_eq!(CascadePlan::uniform(10, 3).unwrap().widths(), vec![4, 3, 3]);
        assert_eq!(CascadePlan::prefix(128, 32).unwrap().ends(), &[32, 128]);
        assert_eq!(CascadePlan::exact(64).ends(), &[64]);
        assert!(CascadePlan::from_widths(10, &[]).is_err());
        assert!(CascadePlan::from_widths(10, &[5, 0, 5]).is_err());
        assert!(CascadePlan::from_widths(10, &[5, 6]).is_err());
        assert!(CascadePlan::uniform(4, 5).is_err());
        assert!(CascadePlan::uniform(0, 1).is_err());
        assert!(CascadePlan::prefix(64, 0).is_err());
        assert!(CascadePlan::prefix(64, 64).is_err());
    }

    #[test]
    fn cascade_matches_exact_search() {
        let mut rng = seeded(21);
        for dim in [1usize, 63, 64, 65, 130, 300] {
            let rows: Vec<BitVector> = (0..13).map(|_| random_bits(dim, &mut rng)).collect();
            let mem = SearchMemory::from_rows(&rows).unwrap();
            let queries: Vec<BitVector> = (0..17).map(|_| random_bits(dim, &mut rng)).collect();
            let batch = QueryBatch::from_vectors(&queries).unwrap();
            let reference = mem.winners_batch(&batch).unwrap();
            for plan in [
                CascadePlan::exact(dim),
                CascadePlan::uniform(dim, dim.min(4)).unwrap(),
                CascadePlan::uniform(dim, dim).unwrap(), // one dim per stage
            ] {
                let out = mem.search_cascade(&batch, &plan).unwrap();
                assert_eq!(out.winners(), reference.as_slice(), "dim {dim} plan {plan:?}");
            }
        }
    }

    #[test]
    fn exact_plan_telemetry_is_full_activation() {
        let mut rng = seeded(22);
        let rows: Vec<BitVector> = (0..9).map(|_| random_bits(130, &mut rng)).collect();
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let queries: Vec<BitVector> = (0..5).map(|_| random_bits(130, &mut rng)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let out = mem.search_cascade(&batch, &CascadePlan::exact(130)).unwrap();
        let stats = out.stats();
        assert_eq!(stats.queries(), 5);
        assert_eq!(stats.activated_dims(), stats.exact_dims());
        assert_eq!(stats.exact_dims(), 5 * 9 * 130);
        assert!((stats.activation_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(stats.stage_rows(), &[5 * 9]);
    }

    #[test]
    fn pruning_fires_on_separable_rows() {
        // One hot row matches the query everywhere; the others are its
        // complement — after a one-word prefix, all cold rows are pruned.
        let dim = 256;
        let hot = BitVector::ones(dim);
        let cold = BitVector::zeros(dim);
        let rows = vec![cold.clone(), hot.clone(), cold.clone(), cold];
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&[hot]).unwrap();
        let plan = CascadePlan::prefix(dim, 64).unwrap();
        let out = mem.search_cascade(&batch, &plan).unwrap();
        assert_eq!(out.winner(0), (1, 256));
        let stats = out.stats();
        assert!(stats.activated_dims() < stats.exact_dims());
        // Stage 0 admits all 4 rows; only the hot row survives to stage 1.
        assert_eq!(stats.stage_rows(), &[4, 1]);
        assert_eq!(stats.activated_dims(), 4 * 64 + 192);
    }

    #[test]
    fn tie_break_survives_pruning() {
        // Rows 1 and 3 are identical and tie; pruning must not discard
        // the lower-index tying row.
        let mut rng = seeded(23);
        let pattern = random_bits(100, &mut rng);
        let rows =
            vec![BitVector::zeros(100), pattern.clone(), BitVector::zeros(100), pattern.clone()];
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(std::slice::from_ref(&pattern)).unwrap();
        for plan in [
            CascadePlan::exact(100),
            CascadePlan::prefix(100, 30).unwrap(),
            CascadePlan::uniform(100, 100).unwrap(),
        ] {
            let out = mem.search_cascade(&batch, &plan).unwrap();
            assert_eq!(out.winner(0), (1, pattern.count_ones()), "{plan:?}");
        }
    }

    #[test]
    fn stats_merge_is_additive() {
        let mut a = CascadeStats::zeroed(4, 128, 2);
        a.queries = 3;
        a.activated_dims = 100;
        a.stage_rows = vec![12, 4];
        let mut b = CascadeStats::zeroed(4, 128, 2);
        b.queries = 2;
        b.activated_dims = 50;
        b.stage_rows = vec![8, 2];
        a.merge(&b);
        assert_eq!(a.queries(), 5);
        assert_eq!(a.activated_dims(), 150);
        assert_eq!(a.stage_rows(), &[20, 6]);
    }

    #[test]
    fn dimension_and_plan_mismatches_rejected() {
        let mem = SearchMemory::new(BitMatrix::zeros(2, 64));
        let batch = QueryBatch::from_vectors(&[BitVector::zeros(64)]).unwrap();
        let wrong_batch = QueryBatch::from_vectors(&[BitVector::zeros(65)]).unwrap();
        assert!(matches!(
            mem.search_cascade(&wrong_batch, &CascadePlan::exact(64)),
            Err(LinalgError::ShapeMismatch { op: "search_cascade", .. })
        ));
        assert!(matches!(
            mem.search_cascade(&batch, &CascadePlan::exact(65)),
            Err(LinalgError::ShapeMismatch { op: "search_cascade(plan)", .. })
        ));
    }

    #[test]
    fn snapped_rounds_and_merges_boundaries() {
        let plan = CascadePlan::from_widths(10_240, &[600, 1_000, 8_640]).unwrap();
        assert_eq!(plan.snapped(2_048).unwrap().ends(), &[2_048, 10_240]);
        assert_eq!(plan.snapped(64).unwrap().ends(), &[576, 1_600, 10_240]);
        // Unit at or past the dimensionality collapses to the exact plan.
        assert_eq!(plan.snapped(10_240).unwrap().stages(), 1);
        assert_eq!(plan.snapped(99_999).unwrap().stages(), 1);
        // Tiny interior boundaries clamp up to one unit instead of
        // vanishing.
        let small = CascadePlan::from_widths(1_024, &[8, 1_016]).unwrap();
        assert_eq!(small.snapped(256).unwrap().ends(), &[256, 1_024]);
        // Boundaries that round past the end merge into the final stage.
        let late = CascadePlan::from_widths(1_024, &[1_000, 24]).unwrap();
        assert_eq!(late.snapped(256).unwrap().ends(), &[1_024]);
        assert!(plan.snapped(0).is_err());
    }

    /// A class-imbalanced memory (one dense row, sparse rest) plus
    /// traffic near the dense row — the workload whose rows separate
    /// after a short prefix.
    fn imbalanced_setup(
        rows: usize,
        dim: usize,
        queries: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> (SearchMemory, QueryBatch) {
        let mut density = |d: f32| -> BitVector {
            BitVector::from_bools(&(0..dim).map(|_| rng.gen::<f32>() < d).collect::<Vec<_>>())
        };
        let mut stored: Vec<BitVector> = vec![density(0.5)];
        for _ in 1..rows {
            stored.push(density(0.02));
        }
        let qs: Vec<BitVector> = (0..queries)
            .map(|i| {
                // Mostly-majority traffic (the bench's mix): minority
                // queries keep every sparse row alive, so their share
                // controls how aggressive a prefix pays off.
                let mut q = stored[if i % 50 == 0 { 1 + i % (rows - 1) } else { 0 }].clone();
                for _ in 0..dim / 20 {
                    let bit = rng.gen_range(0..dim);
                    q.set(bit, !q.get(bit));
                }
                q
            })
            .collect();
        (SearchMemory::from_rows(&stored).unwrap(), QueryBatch::from_vectors(&qs).unwrap())
    }

    #[test]
    fn tuned_picks_multi_stage_on_separable_workloads() {
        let mut rng = seeded(41);
        let (mem, batch) = imbalanced_setup(12, 2048, 100, &mut rng);
        let plan = CascadePlan::tuned(&mem, &batch).unwrap();
        assert!(plan.stages() > 1, "separable workload must cascade: {plan:?}");
        assert!(plan.ends()[0] <= 2048 / 4, "prefix should be short: {plan:?}");
        assert!(plan.ends()[0].is_multiple_of(64), "tuned boundaries are word-aligned");
        // Tuning is deterministic and exact.
        assert_eq!(plan, CascadePlan::tuned(&mem, &batch).unwrap());
        let cascade = mem.search_cascade(&batch, &plan).unwrap();
        assert_eq!(cascade.winners(), mem.winners_batch(&batch).unwrap().as_slice());
        assert!(cascade.stats().activation_fraction() < 0.5, "pruning must fire");
    }

    #[test]
    fn tuned_falls_back_to_exact_on_unprunable_workloads() {
        // Dense random rows and random queries: the Hamming bound cannot
        // separate anything early, so the exact sweep is the right plan.
        let mut rng = seeded(42);
        let stored: Vec<BitVector> = (0..16).map(|_| random_bits(1024, &mut rng)).collect();
        let mem = SearchMemory::from_rows(&stored).unwrap();
        let qs: Vec<BitVector> = (0..40).map(|_| random_bits(1024, &mut rng)).collect();
        let batch = QueryBatch::from_vectors(&qs).unwrap();
        let plan = CascadePlan::tuned(&mem, &batch).unwrap();
        assert_eq!(plan, CascadePlan::exact(1024), "{plan:?}");
    }

    #[test]
    fn tuned_validates_inputs() {
        let mem = SearchMemory::new(BitMatrix::zeros(4, 128));
        let batch = QueryBatch::from_vectors(&[BitVector::zeros(128)]).unwrap();
        let wrong = QueryBatch::from_vectors(&[BitVector::zeros(130)]).unwrap();
        assert!(matches!(
            CascadePlan::tuned(&mem, &wrong),
            Err(LinalgError::ShapeMismatch { op: "CascadePlan::tuned", .. })
        ));
        let empty_mem = SearchMemory::new(BitMatrix::zeros(0, 128));
        assert!(CascadePlan::tuned(&empty_mem, &batch).is_err());
        let empty_batch = QueryBatch::from_matrix(BitMatrix::zeros(0, 128));
        assert!(CascadePlan::tuned(&mem, &empty_batch).is_err());
        // Tiny dimensionalities have no candidate prefixes: exact plan.
        let narrow = SearchMemory::new(BitMatrix::zeros(4, 64));
        let nb = QueryBatch::from_vectors(&[BitVector::zeros(64)]).unwrap();
        assert_eq!(CascadePlan::tuned(&narrow, &nb).unwrap(), CascadePlan::exact(64));
    }

    #[test]
    fn bound_cache_hits_and_evicts() {
        let mut rng = seeded(43);
        let stored: Vec<BitVector> = (0..9).map(|_| random_bits(256, &mut rng)).collect();
        let mem = SearchMemory::from_rows(&stored).unwrap();
        let batch =
            QueryBatch::from_vectors(&[random_bits(256, &mut rng), random_bits(256, &mut rng)])
                .unwrap();
        assert_eq!(mem.cascade_cache().len(), 0);
        let plan = CascadePlan::prefix(256, 64).unwrap();
        let a = mem.search_cascade(&batch, &plan).unwrap();
        assert_eq!(mem.cascade_cache().len(), 1);
        // A second search with an equal plan reuses the cached form.
        let b = mem.search_cascade(&batch, &plan.clone()).unwrap();
        assert_eq!(a, b);
        assert_eq!(mem.cascade_cache().len(), 1);
        // One-stage plans derive nothing.
        mem.search_cascade(&batch, &CascadePlan::exact(256)).unwrap();
        assert_eq!(mem.cascade_cache().len(), 1);
        // Distinct multi-stage plans each get an entry, LRU-capped.
        for stages in 2..=6 {
            mem.search_cascade(&batch, &CascadePlan::uniform(256, stages).unwrap()).unwrap();
        }
        assert_eq!(mem.cascade_cache().len(), BOUND_CACHE_CAP);
        // An explicit handle shares the memory's cached form.
        let shared = Arc::new(mem.clone());
        let bound = BoundCascade::new(Arc::clone(&shared), plan.clone()).unwrap();
        assert_eq!(shared.cascade_cache().len(), 1);
        assert_eq!(bound.search(&batch).unwrap(), a);
    }

    #[test]
    fn mutation_invalidates_cached_forms_and_stays_exact() {
        let mut rng = seeded(44);
        let stored: Vec<BitVector> = (0..7).map(|_| random_bits(200, &mut rng)).collect();
        let mut mem = SearchMemory::from_rows(&stored).unwrap();
        let batch: QueryBatch = QueryBatch::from_vectors(
            &(0..5).map(|_| random_bits(200, &mut rng)).collect::<Vec<_>>(),
        )
        .unwrap();
        let plan = CascadePlan::from_widths(200, &[64, 70, 66]).unwrap();
        mem.search_cascade(&batch, &plan).unwrap();
        assert_eq!(mem.cascade_cache().len(), 1);
        // Flip a suffix bit of the winning region: the cached row-suffix
        // table is now stale and MUST be dropped.
        mem.modify(|m| {
            let flipped = !m.get(3, 190);
            m.set(3, 190, flipped)
        });
        assert_eq!(mem.cascade_cache().len(), 0, "mutation must invalidate the cache");
        let after = mem.search_cascade(&batch, &plan).unwrap();
        assert_eq!(after.winners(), mem.winners_batch(&batch).unwrap().as_slice());
        assert_eq!(mem.cascade_cache().len(), 1, "next search re-derives");
        // A reported no-op keeps the cache warm.
        mem.modify_reporting(|_| false);
        assert_eq!(mem.cascade_cache().len(), 1);
        // Clones start cold but stay exact.
        let cloned = mem.clone();
        assert_eq!(cloned.cascade_cache().len(), 0);
        assert_eq!(cloned.search_cascade(&batch, &plan).unwrap(), after);
    }

    /// Splits `rows` into `p` equal-width segment memories.
    fn segment_rows(rows: &[BitVector], p: usize) -> Vec<SearchMemory> {
        let dim = rows[0].len();
        let seg = dim / p;
        (0..p)
            .map(|i| {
                let segs: Vec<BitVector> = rows.iter().map(|r| r.slice(i * seg, seg)).collect();
                SearchMemory::from_rows(&segs).unwrap()
            })
            .collect()
    }

    #[test]
    fn segmented_cascade_matches_exact_search() {
        let mut rng = seeded(45);
        // seg_len 64 (word-aligned) and 50 (masked) geometries.
        for (dim, p) in [(256usize, 4usize), (200, 4), (300, 3), (512, 2)] {
            let stored: Vec<BitVector> = (0..13).map(|_| random_bits(dim, &mut rng)).collect();
            let parts = segment_rows(&stored, p);
            let mem = SearchMemory::from_rows(&stored).unwrap();
            let qs: Vec<BitVector> = (0..17).map(|_| random_bits(dim, &mut rng)).collect();
            let batch = QueryBatch::from_vectors(&qs).unwrap();
            let reference = mem.winners_batch(&batch).unwrap();
            let seg = dim / p;
            let mut plans = vec![CascadePlan::exact(dim)];
            if p > 1 {
                plans.push(CascadePlan::prefix(dim, seg).unwrap());
                plans.push(CascadePlan::uniform(dim, p).unwrap());
            }
            for plan in plans {
                let cascade = SegmentedCascade::new(&parts, &plan).unwrap();
                let out = cascade.search(&parts, &batch).unwrap();
                assert_eq!(out.winners(), reference.as_slice(), "dim {dim} P{p} {plan:?}");
                assert!(out.stats().activated_dims() <= out.stats().exact_dims());
                assert_eq!(out.stats().queries(), 17);
            }
        }
    }

    #[test]
    fn segmented_cascade_prunes_and_ties_like_contiguous() {
        // Dense winner + sparse rows, duplicated winner for the
        // tie-break: pruning fires and the low-row tie survives.
        let dim = 512;
        let mut rng = seeded(46);
        let hot = random_bits(dim, &mut rng);
        let sparse: Vec<BitVector> = (0..5)
            .map(|_| {
                BitVector::from_bools(
                    &(0..dim).map(|_| rng.gen::<f32>() < 0.03).collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut stored = vec![sparse[0].clone(), hot.clone(), sparse[1].clone(), hot.clone()];
        stored.extend_from_slice(&sparse[2..]);
        let parts = segment_rows(&stored, 4);
        let plan = CascadePlan::prefix(dim, 128).unwrap();
        let cascade = SegmentedCascade::new(&parts, &plan).unwrap();
        let batch = QueryBatch::from_vectors(std::slice::from_ref(&hot)).unwrap();
        let out = cascade.search(&parts, &batch).unwrap();
        assert_eq!(out.winner(0), (1, hot.count_ones()), "low-row tie-break");
        assert!(out.stats().activated_dims() < out.stats().exact_dims(), "pruning fires");
    }

    #[test]
    fn segmented_cascade_validates_layout() {
        let mut rng = seeded(47);
        let stored: Vec<BitVector> = (0..6).map(|_| random_bits(256, &mut rng)).collect();
        let parts = segment_rows(&stored, 4);
        // Misaligned interior boundary: precise op string.
        let misaligned = CascadePlan::prefix(256, 100).unwrap();
        assert!(matches!(
            SegmentedCascade::new(&parts, &misaligned),
            Err(LinalgError::ShapeMismatch {
                op: "SegmentedCascade stage boundary",
                found: 100,
                ..
            })
        ));
        // Plan dimensionality must equal P × seg_len.
        assert!(SegmentedCascade::new(&parts, &CascadePlan::exact(128)).is_err());
        assert!(SegmentedCascade::new(&[], &CascadePlan::exact(256)).is_err());
        // Search-side shape checks.
        let plan = CascadePlan::prefix(256, 64).unwrap();
        let cascade = SegmentedCascade::new(&parts, &plan).unwrap();
        let bad_batch = QueryBatch::from_vectors(&[BitVector::zeros(255)]).unwrap();
        assert!(cascade.search(&parts, &bad_batch).is_err());
        let fewer = &parts[..3];
        assert!(cascade
            .search(fewer, &QueryBatch::from_vectors(&[BitVector::zeros(256)]).unwrap())
            .is_err());
    }

    #[test]
    fn mask_stage_partitions_bits_exactly() {
        let mut rng = seeded(24);
        let q = random_bits(200, &mut rng);
        let row = random_bits(200, &mut rng);
        // Any split into stages must reproduce the full dot exactly.
        for plan in [
            CascadePlan::uniform(200, 7).unwrap(),
            CascadePlan::from_widths(200, &[1, 63, 64, 65, 7]).unwrap(),
        ] {
            let mut total = 0u32;
            let mut masked = Vec::new();
            let mut lo = 0usize;
            for &hi in plan.ends() {
                mask_stage(q.as_words(), lo, hi, &mut masked);
                let (wlo, whi) = (lo / 64, word_end(hi));
                total += batch::dot_words(&row.as_words()[wlo..whi], &masked);
                lo = hi;
            }
            assert_eq!(total, q.dot(&row), "{plan:?}");
        }
    }

    #[test]
    fn stage_words_counts_contiguous_and_segmented_grids() {
        // Contiguous word grid (unit % 64 == 0): a stage reads the word
        // window [prev/64, word_end(e)), seam words genuinely re-read.
        assert_eq!(stage_words(0, 128, 64), 2);
        assert_eq!(stage_words(128, 512, 64), 6);
        assert_eq!(stage_words(0, 100, 64), 2); // unaligned final dim
        assert_eq!(stage_words(128, 200, 128), 2);
        // Segmented grid (unit % 64 != 0): per-segment padded storage,
        // segments × word_end(unit), no shared seam word. The old
        // contiguous formula charged stage [100, 200) of a unit=100
        // layout word_end(200) - 100/64 = 3 words; the real kernels
        // drive one 100-bit segment = 2 padded words.
        assert_eq!(stage_words(0, 100, 100), 2);
        assert_eq!(stage_words(100, 200, 100), 2);
        assert_eq!(stage_words(100, 500, 100), 8);
        // Sub-word segments: the old formula under-charged the padding
        // (stage [64, 128) of a unit=32 layout looked like 1 word; it is
        // two 32-bit segments in their own words).
        assert_eq!(stage_words(0, 64, 32), 2);
        assert_eq!(stage_words(64, 128, 32), 2);
    }

    #[test]
    fn modeled_cost_charges_segmented_stages_without_seam_words() {
        // Regression for the seam-word miscount: an unaligned-unit plan
        // priced under a pinned model must match the hand-computed
        // per-segment accounting, not the contiguous word-window one.
        let model =
            CostModel { cont_weight: 2.0, row_overhead_words: 1.0, stage_overhead_words: 4.0 };
        let plan = CascadePlan::from_widths(200, &[100, 100]).unwrap();
        let mut stats = CascadeStats::zeroed(10, 200, 2);
        stats.queries = 2;
        stats.stage_rows = vec![20, 6];
        // unit = 100: both stages drive one 100-bit segment = 2 padded
        // words. Stage 0: 20 rows × 2 words + 2 queries × 4 overhead.
        // Stage 1: 2.0 × 6 rows × 2 words + 1.0 × 6 rows + 2 × 4.
        let cost = modeled_cost(&plan, &stats, &model, 100);
        assert_eq!(cost, (20.0 * 2.0 + 8.0) + (2.0 * 6.0 * 2.0 + 6.0 + 8.0));
        // The pre-fix contiguous formula would have priced stage 1 at
        // word_end(200) - 100/64 = 3 words (cost 98 total, not 86).
        assert_ne!(cost, (20.0 * 2.0 + 8.0) + (2.0 * 6.0 * 3.0 + 6.0 + 8.0));
        // Exact cost on the same segmented grid: 200 bits = two 100-bit
        // segments = 4 padded words per (query, row).
        let exact = modeled_exact_cost(10, 200, 2, &model, 100);
        assert_eq!(exact, (2 * 10 * 4) as f64 + 2.0 * 4.0);
        // The word grid keeps the contiguous window untouched.
        let aligned = CascadePlan::from_widths(256, &[128, 128]).unwrap();
        let mut astats = CascadeStats::zeroed(10, 256, 2);
        astats.queries = 2;
        astats.stage_rows = vec![20, 6];
        let acost = modeled_cost(&aligned, &astats, &model, 64);
        assert_eq!(acost, (20.0 * 2.0 + 8.0) + (2.0 * 6.0 * 2.0 + 6.0 + 8.0));
    }

    #[test]
    fn tuned_aligned_with_pinned_model_is_deterministic_on_unaligned_units() {
        // The explicit-model hook on an unaligned unit must produce a
        // valid unit-gridded plan, stay deterministic, and stay exact.
        let mut rng = seeded(48);
        let (mem, batch) = imbalanced_setup(10, 500, 60, &mut rng);
        let model = CostModel::fallback();
        let plan = CascadePlan::tuned_aligned_with(&mem, &batch, 100, &model).unwrap();
        assert_eq!(plan, CascadePlan::tuned_aligned_with(&mem, &batch, 100, &model).unwrap());
        for &e in plan.ends() {
            assert!(e == 500 || e.is_multiple_of(100), "boundary {e} off the unit grid");
        }
        let out = mem.search_cascade(&batch, &plan).unwrap();
        assert_eq!(out.winners(), mem.winners_batch(&batch).unwrap().as_slice());
    }
}
