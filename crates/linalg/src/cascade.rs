//! Progressive-precision cascade search: prefix-pruned associative
//! lookup that is bit-identical to the exact sweep.
//!
//! The IMC array the paper models evaluates an associative search
//! dimension group by dimension group, and its energy ladder (Fig. 7) is
//! proportional to how many dimensions are activated. The software
//! analogue: score a *prefix* of the dimensions for every row, prune the
//! rows that provably cannot win, and spend the remaining dimensions only
//! on the survivors.
//!
//! Exactness is by construction, not by approximation. The dot
//! similarity a row can still collect from the unscored suffix is bounded
//! by the **Hamming bound**: from `dot = (ones(q) + ones(r) − ham(q,
//! r)) / 2` and `ham ≥ |ones(q) − ones(r)|` over any dimension range,
//!
//! ```text
//! dot_suffix(q, r) ≤ min(ones(q_suffix), ones(r_suffix))
//! ```
//!
//! so after any stage a row `r` may be discarded exactly when
//!
//! ```text
//! partial[r] + min(ones(q_suffix), ones(r_suffix)) < best_partial_so_far
//! ```
//!
//! because its final score is then *strictly* below another row's final
//! score: it can neither win nor tie, so the winner **and** the
//! workspace's low-row tie-break are unchanged. Row suffix popcounts are
//! a property of the stored memory (in the paper's hardware they are
//! known when the array is programmed) and are computed once per search,
//! amortized over the whole batch; query suffix popcounts cost one pass
//! over each query's words. A one-stage [`CascadePlan`] degenerates to
//! the exact search; a plan of `D` one-dimension stages is the paper's
//! column-by-column evaluation. The `cascade_equivalence` proptest suite
//! pins winner/score/tie-break identity against
//! [`crate::SearchMemory::search_batch`] for arbitrary plans on every
//! reachable kernel backend.
//!
//! Every search also returns [`CascadeStats`] — per-stage shortlist
//! sizes and the total number of activated row-dimensions — which is the
//! telemetry `imc_sim` converts back into the paper's energy ladder.

use crate::batch::{self, dot_words};
use crate::bits::BitMatrix;
use crate::blocked::SearchMemory;
use crate::error::{LinalgError, Result};
use crate::kernel::{self, Backend};
use crate::{QueryBatch, ScoreMatrix};

/// Stage layout of a cascade search: strictly increasing dimension
/// prefixes ending at the full dimensionality.
///
/// Stage `k` scores dimensions `[ends[k-1], ends[k])` (stage 0 starts at
/// 0). Any positive widths are legal; stage boundaries that are multiples
/// of 64 are fastest because they avoid masked boundary words, and a
/// first stage near `D / 8 .. D / 4` is a good default for workloads
/// whose winners separate early (see the README's plan-picking guidance).
///
/// # Example
///
/// ```
/// use hd_linalg::CascadePlan;
///
/// let plan = CascadePlan::from_widths(512, &[64, 192, 256]).unwrap();
/// assert_eq!(plan.stages(), 3);
/// assert_eq!(plan.ends(), &[64, 256, 512]);
/// assert_eq!(CascadePlan::exact(512).stages(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadePlan {
    dim: usize,
    /// Cumulative stage boundaries; strictly increasing, last == `dim`.
    ends: Vec<usize>,
}

impl CascadePlan {
    /// Builds a plan from per-stage widths, which must be positive and
    /// sum to `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `widths` is empty or contains
    /// a zero width, and [`LinalgError::ShapeMismatch`] when the widths
    /// do not sum to `dim`.
    pub fn from_widths(dim: usize, widths: &[usize]) -> Result<Self> {
        if widths.is_empty() {
            return Err(LinalgError::Empty { op: "CascadePlan::from_widths" });
        }
        let mut ends = Vec::with_capacity(widths.len());
        let mut total = 0usize;
        for &w in widths {
            if w == 0 {
                return Err(LinalgError::Empty { op: "CascadePlan stage width" });
            }
            total += w;
            ends.push(total);
        }
        if total != dim {
            return Err(LinalgError::ShapeMismatch {
                op: "CascadePlan::from_widths",
                expected: dim,
                found: total,
            });
        }
        Ok(CascadePlan { dim, ends })
    }

    /// An even split into `stages` stages (the first `dim % stages`
    /// stages take one extra dimension).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero stages or zero `dim`, and
    /// [`LinalgError::ShapeMismatch`] when `stages > dim` (a stage would
    /// be empty).
    pub fn uniform(dim: usize, stages: usize) -> Result<Self> {
        if stages == 0 || dim == 0 {
            return Err(LinalgError::Empty { op: "CascadePlan::uniform" });
        }
        if stages > dim {
            return Err(LinalgError::ShapeMismatch {
                op: "CascadePlan::uniform",
                expected: dim,
                found: stages,
            });
        }
        let base = dim / stages;
        let extra = dim % stages;
        let widths: Vec<usize> = (0..stages).map(|s| base + usize::from(s < extra)).collect();
        Self::from_widths(dim, &widths)
    }

    /// The two-stage plan `[first, dim - first]` — score a prefix, then
    /// finish the survivors. The most common shape in practice.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when either stage would be empty
    /// (`first == 0` or `first >= dim`).
    pub fn prefix(dim: usize, first: usize) -> Result<Self> {
        if first == 0 || first >= dim {
            return Err(LinalgError::Empty { op: "CascadePlan::prefix" });
        }
        Self::from_widths(dim, &[first, dim - first])
    }

    /// The degenerate one-stage plan: the cascade IS the exact search
    /// (no pruning can fire; telemetry reports full activation).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn exact(dim: usize) -> Self {
        assert!(dim > 0, "cascade plan needs a positive dimensionality");
        CascadePlan { dim, ends: vec![dim] }
    }

    /// Dimensionality the plan covers.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stages.
    #[inline]
    pub fn stages(&self) -> usize {
        self.ends.len()
    }

    /// Cumulative stage boundaries (strictly increasing; last == `dim`).
    #[inline]
    pub fn ends(&self) -> &[usize] {
        &self.ends
    }

    /// Per-stage widths in dimensions.
    pub fn widths(&self) -> Vec<usize> {
        let mut prev = 0usize;
        self.ends
            .iter()
            .map(|&e| {
                let w = e - prev;
                prev = e;
                w
            })
            .collect()
    }
}

/// Activation telemetry of one cascade search — the quantity the paper's
/// Fig. 7 energy ladder is proportional to.
///
/// `activated_dims` counts `(row, dimension)` products actually scored:
/// an exact search activates `queries × rows × dim` of them, and every
/// pruned row saves its remaining dimensions. [`CascadeStats::merge`]
/// makes the counters additive across query chunks **of the same
/// memory** (merging stats from memories with different row counts would
/// corrupt [`CascadeStats::exact_dims`], so shapes are asserted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeStats {
    queries: usize,
    rows: usize,
    dim: usize,
    stage_rows: Vec<u64>,
    activated_dims: u64,
}

impl CascadeStats {
    pub(crate) fn zeroed(rows: usize, dim: usize, stages: usize) -> Self {
        CascadeStats { queries: 0, rows, dim, stage_rows: vec![0; stages], activated_dims: 0 }
    }

    /// Queries answered.
    #[inline]
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Memory rows searched per query.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality of the searched memory.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows entering each stage, summed over queries (stage 0 always
    /// admits every row).
    #[inline]
    pub fn stage_rows(&self) -> &[u64] {
        &self.stage_rows
    }

    /// Total `(row, dimension)` products scored across all queries.
    #[inline]
    pub fn activated_dims(&self) -> u64 {
        self.activated_dims
    }

    /// What an exact search would activate: `queries × rows × dim`.
    #[inline]
    pub fn exact_dims(&self) -> u64 {
        self.queries as u64 * self.rows as u64 * self.dim as u64
    }

    /// `activated_dims / exact_dims` in `(0, 1]` — the relative energy of
    /// the cascade under the paper's activation-proportional model (1.0
    /// when no pruning fired).
    pub fn activation_fraction(&self) -> f64 {
        let exact = self.exact_dims();
        if exact == 0 {
            return 1.0;
        }
        self.activated_dims as f64 / exact as f64
    }

    /// Folds another search's counters into this one (used by the
    /// thread-chunked dispatch; callers may also merge successive
    /// batches against the same memory). Shapes must agree.
    ///
    /// # Panics
    ///
    /// Panics if `other` was produced under a different plan shape
    /// (stage count) or a memory of different dimensionality or row
    /// count.
    pub fn merge(&mut self, other: &CascadeStats) {
        assert_eq!(self.stage_rows.len(), other.stage_rows.len(), "merging unrelated plans");
        assert_eq!(self.dim, other.dim, "merging unrelated memories");
        assert_eq!(self.rows, other.rows, "merging unrelated memories");
        self.queries += other.queries;
        self.activated_dims += other.activated_dims;
        for (a, b) in self.stage_rows.iter_mut().zip(&other.stage_rows) {
            *a += b;
        }
    }
}

/// Winners plus activation telemetry of one cascade search. Winners are
/// bit-identical to [`crate::BitMatrix::winners_batch`] — same rows,
/// same scores, same low-row tie-break.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeResults {
    winners: Vec<(usize, u32)>,
    stats: CascadeStats,
}

impl CascadeResults {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.winners.len()
    }

    /// Whether there are no results.
    pub fn is_empty(&self) -> bool {
        self.winners.is_empty()
    }

    /// Winning `(row, score)` of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn winner(&self, q: usize) -> (usize, u32) {
        self.winners[q]
    }

    /// All winners, parallel to the batch's queries.
    pub fn winners(&self) -> &[(usize, u32)] {
        &self.winners
    }

    /// Consumes the results, yielding the winners without a copy.
    pub fn into_winners(self) -> Vec<(usize, u32)> {
        self.winners
    }

    /// Activation telemetry of the search.
    pub fn stats(&self) -> &CascadeStats {
        &self.stats
    }
}

/// Exclusive end of the packed-word range covering bits `[.., hi)`.
#[inline]
fn word_end(hi: usize) -> usize {
    (hi - 1) / 64 + 1
}

/// The query words covering bits `[lo, hi)`, ready for a word-slice dot
/// over `[lo/64, word_end(hi))`: borrowed directly when the stage is
/// word-aligned (a final stage ending at `dim` counts — both operands
/// keep clean tails), otherwise boundary-masked into `scratch`.
fn stage_query<'a>(
    qw: &'a [u64],
    lo: usize,
    hi: usize,
    dim: usize,
    scratch: &'a mut Vec<u64>,
) -> &'a [u64] {
    let wlo = lo / 64;
    let whi = word_end(hi);
    if lo.is_multiple_of(64) && (hi.is_multiple_of(64) || hi == dim) {
        &qw[wlo..whi]
    } else {
        mask_stage(qw, lo, hi, scratch);
        scratch
    }
}

/// Copies the query words covering bits `[lo, hi)` into `out`, masking
/// the boundary words so only that dimension range contributes. The
/// masked copy is built once per (query, stage); per-row scoring then
/// reduces to a plain word-slice dot over `[lo/64, word_end(hi))`.
fn mask_stage(qw: &[u64], lo: usize, hi: usize, out: &mut Vec<u64>) {
    debug_assert!(lo < hi);
    let wlo = lo / 64;
    let whi = word_end(hi);
    out.clear();
    out.extend_from_slice(&qw[wlo..whi]);
    let lo_rem = lo % 64;
    if lo_rem != 0 {
        out[0] &= u64::MAX << lo_rem;
    }
    let hi_rem = hi % 64;
    if hi_rem != 0 {
        let last = out.len() - 1;
        out[last] &= (1u64 << hi_rem) - 1;
    }
}

/// Ones of `words`' bits in `[lo, hi)` without copying. Boundary words
/// are handled outside the interior loop so the hot path is a plain
/// branch-free popcount sweep.
fn ones_in_range(words: &[u64], lo: usize, hi: usize) -> u32 {
    debug_assert!(lo < hi);
    let wlo = lo / 64;
    let whi = word_end(hi);
    let lo_mask = u64::MAX << (lo % 64);
    let hi_mask = if hi.is_multiple_of(64) { u64::MAX } else { (1u64 << (hi % 64)) - 1 };
    if whi - wlo == 1 {
        return (words[wlo] & lo_mask & hi_mask).count_ones();
    }
    let mut total = (words[wlo] & lo_mask).count_ones() + (words[whi - 1] & hi_mask).count_ones();
    total += words[wlo + 1..whi - 1].iter().map(|w| w.count_ones()).sum::<u32>();
    total
}

/// Fills `suffix` (one slot per stage) with the popcount of `words` in
/// the dimensions **after** each stage boundary: `suffix[k] =
/// ones(words[ends[k]..dim))` (0 for the final stage). One pass over the
/// suffix words (stage 0's own bits are never needed): per-stage counts,
/// then a reverse cumulative sum.
fn suffix_ones(words: &[u64], ends: &[usize], suffix: &mut [u32]) {
    debug_assert_eq!(suffix.len(), ends.len());
    let stages = ends.len();
    suffix[0] = 0;
    for k in 1..stages {
        suffix[k] = ones_in_range(words, ends[k - 1], ends[k]);
    }
    // suffix[k] currently holds stage k's own ones; shift into "ones
    // after stage k" by accumulating from the back.
    let mut acc = 0u32;
    for s in suffix.iter_mut().rev() {
        let stage = *s;
        *s = acc;
        acc += stage;
    }
}

/// Row-major copy of each row's leading `e0` bits (boundary word
/// masked) — the stage-0 sub-memory the tiled batched kernels sweep.
fn prefix_matrix(m: &BitMatrix, e0: usize) -> BitMatrix {
    let w0 = word_end(e0);
    let mask = if e0.is_multiple_of(64) { u64::MAX } else { (1u64 << (e0 % 64)) - 1 };
    let mut data = Vec::with_capacity(m.rows() * w0);
    for r in 0..m.rows() {
        data.extend_from_slice(&m.row_words_pub(r)[..w0]);
        let last = data.len() - 1;
        data[last] &= mask;
    }
    BitMatrix::from_raw_words(m.rows(), e0, data)
}

/// Stage-0 partial scores on the active backend: the full batched tiled
/// sweep (SIMD blocked layout, `rayon` chunking) over the prefix
/// sub-memory, driven by the **full-width** queries — the kernels read
/// only the memory's word width per row, and the prefix memory's masked
/// boundary word keeps out-of-stage query bits from contributing. The
/// all-rows stage therefore runs at exactly the exact search's
/// per-dimension cost, with no query re-packing.
fn stage0_scores(m: &BitMatrix, batch: &QueryBatch, e0: usize) -> ScoreMatrix {
    if e0 == m.cols() {
        return m.dot_batch(batch).expect("dimensions validated by caller");
    }
    let prefix = SearchMemory::new(prefix_matrix(m, e0));
    let mut out = ScoreMatrix::zeros(batch.len(), m.rows());
    batch::dot_batch_dispatch(prefix.memory_ref(), batch, &mut out);
    out
}

/// Pruning continuation over queries `[q_offset, q_offset + out.len())`:
/// takes each query's stage-0 partial scores (in `scores`, one
/// `rows`-wide slice per query, updated in place), prunes with the
/// Hamming bound, finishes the survivors stage by stage, and writes the
/// winners. `dot` is the word-slice popcount kernel (the active-backend
/// dispatcher in production; an explicit backend's table entry under
/// test). Stage-0 telemetry is accounted by the caller; this function
/// accumulates stages `1..`.
#[allow(clippy::too_many_arguments)]
fn continuation_range<F: Fn(&[u64], &[u64]) -> u32>(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    row_suffix: &[u32],
    q_offset: usize,
    scores: &mut [u32],
    out: &mut [(usize, u32)],
    stats: &mut CascadeStats,
    dot: F,
) {
    let rows = m.rows();
    let ends = plan.ends();
    let stages = ends.len();
    debug_assert_eq!(scores.len(), out.len() * rows);
    let mut q_suffix = vec![0u32; stages];
    let mut cands: Vec<u32> = Vec::with_capacity(rows);
    let mut qmasked: Vec<u64> = Vec::new();
    stats.queries += out.len();
    for (q, slot) in out.iter_mut().enumerate() {
        let partials = &mut scores[q * rows..(q + 1) * rows];
        if stages == 1 {
            // Degenerate plan: stage 0 was the exact search.
            *slot = batch::argmax_scores(partials);
            continue;
        }
        let mut best = partials.iter().copied().max().expect("non-empty memory");
        let qw = batch.query_words(q_offset + q);
        // The query-side suffix popcounts cost a pass over the query's
        // words; computed lazily — only for queries whose shortlist the
        // (free) row-side bound alone fails to collapse. Both bounds are
        // exact, so pruning with the weaker one first never changes
        // winners, only how much work survives.
        let mut q_suffix_ready = false;
        // Prune after stage `k`: row-side Hamming bound first, then the
        // full min(q, r) bound when more than one candidate remains.
        let mut prune =
            |cands: &mut Vec<u32>, partials: &[u32], k: usize, best: u32, from_all_rows: bool| {
                let row_suf = &row_suffix[k * rows..(k + 1) * rows];
                let keep_r = |r: usize| partials[r] as u64 + row_suf[r] as u64 >= best as u64;
                if from_all_rows {
                    cands.clear();
                    cands.extend((0..rows).filter(|&r| keep_r(r)).map(|r| r as u32));
                } else {
                    cands.retain(|&r| keep_r(r as usize));
                }
                if cands.len() > 1 {
                    if !q_suffix_ready {
                        suffix_ones(qw, ends, &mut q_suffix);
                        q_suffix_ready = true;
                    }
                    let qs = q_suffix[k];
                    cands.retain(|&r| {
                        let r = r as usize;
                        partials[r] as u64 + qs.min(row_suf[r]) as u64 >= best as u64
                    });
                }
            };
        prune(&mut cands, partials, 0, best, true);
        // Later stages: finish only the shortlist, re-pruning after each.
        for k in 1..stages {
            let (lo, hi) = (ends[k - 1], ends[k]);
            let qs = stage_query(qw, lo, hi, m.cols(), &mut qmasked);
            let (wlo, whi) = (lo / 64, word_end(hi));
            best = 0;
            for &r in &cands {
                let r = r as usize;
                let s = partials[r] + dot(&m.row_words_pub(r)[wlo..whi], qs);
                partials[r] = s;
                if s > best {
                    best = s;
                }
            }
            stats.stage_rows[k] += cands.len() as u64;
            stats.activated_dims += (cands.len() * (hi - lo)) as u64;
            if k + 1 == stages {
                cands.retain(|&r| partials[r as usize] == best);
            } else {
                prune(&mut cands, partials, k, best, false);
            }
        }
        // After the final stage the suffix is empty, so every survivor
        // holds the exact maximum score; `cands` stays in ascending row
        // order, so its first entry is the workspace's low-row tie-break
        // winner.
        *slot = (cands[0] as usize, best);
    }
}

/// Row suffix popcounts at every stage boundary (`row_suffix[k * rows +
/// r]` = ones of row `r` after stage `k`): a property of the stored
/// memory (known when a hardware array is programmed), computed once per
/// search and amortized over the whole batch.
fn row_suffix_table(m: &BitMatrix, ends: &[usize]) -> Vec<u32> {
    let rows = m.rows();
    let stages = ends.len();
    let mut table = vec![0u32; stages * rows];
    if stages > 1 {
        let mut scratch = vec![0u32; stages];
        for r in 0..rows {
            suffix_ones(m.row_words_pub(r), ends, &mut scratch);
            for (k, &s) in scratch.iter().enumerate() {
                table[k * rows + r] = s;
            }
        }
    }
    table
}

/// Pruning continuation + telemetry over precomputed stage-0 scores —
/// the shared tail of every active-backend entry point.
fn cascade_run(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    mut scores: ScoreMatrix,
    row_suffix: &[u32],
) -> CascadeResults {
    let rows = m.rows();
    let q_total = batch.len();
    let mut winners = vec![(0usize, 0u32); q_total];
    let mut stats = CascadeStats::zeroed(rows, m.cols(), plan.stages());
    stats.stage_rows[0] = (q_total * rows) as u64;
    stats.activated_dims = (q_total * rows * plan.ends()[0]) as u64;
    continuation_dispatch(m, batch, plan, row_suffix, scores.data_mut(), &mut winners, &mut stats);
    CascadeResults { winners, stats }
}

/// Full cascade on the active backend: tiled stage-0 sweep, then the
/// pruning continuation (thread-chunked under the `rayon` feature). The
/// prefix sub-memory and row-suffix table are rebuilt per call; batch
/// after batch against one memory should go through [`BoundCascade`],
/// which derives them once.
fn cascade_active(m: &BitMatrix, batch: &QueryBatch, plan: &CascadePlan) -> CascadeResults {
    let scores = stage0_scores(m, batch, plan.ends()[0]);
    let row_suffix = row_suffix_table(m, plan.ends());
    cascade_run(m, batch, plan, scores, &row_suffix)
}

/// A cascade plan bound to one memory: the stage-0 prefix sub-memory
/// (pre-packed for the active SIMD backend) and the row-suffix table are
/// derived **once** at construction and reused for every batch. This is
/// the serving-path form of [`SearchMemory::search_cascade`], which
/// rebuilds both per call — fine for one-shot sweeps, wasteful when a
/// micro-batcher flushes the same memory thousands of times per second.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitVector, BoundCascade, CascadePlan, QueryBatch, SearchMemory};
/// use std::sync::Arc;
///
/// let rows: Vec<BitVector> =
///     (0..8).map(|r| BitVector::from_bools(&[r % 2 == 0, true, false, r % 3 == 0])).collect();
/// let memory = Arc::new(SearchMemory::from_rows(&rows).unwrap());
/// let bound = BoundCascade::new(Arc::clone(&memory), CascadePlan::prefix(4, 2).unwrap()).unwrap();
/// let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 4])]).unwrap();
/// assert_eq!(bound.search(&batch).unwrap().winners(), memory.winners_batch(&batch).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct BoundCascade {
    memory: std::sync::Arc<SearchMemory>,
    plan: CascadePlan,
    /// Boundary-masked stage-0 sub-memory; `None` when stage 0 covers the
    /// full width (the bound memory's own packed form serves directly).
    prefix: Option<SearchMemory>,
    row_suffix: Vec<u32>,
}

impl BoundCascade {
    /// Binds `plan` to `memory`, deriving the stage-0 prefix sub-memory
    /// and the row-suffix table once.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a memory with no rows and
    /// [`LinalgError::ShapeMismatch`] when the plan's dimensionality
    /// differs from the memory's.
    pub fn new(memory: std::sync::Arc<SearchMemory>, plan: CascadePlan) -> Result<Self> {
        let m = memory.matrix();
        if m.rows() == 0 {
            return Err(LinalgError::Empty { op: "BoundCascade::new" });
        }
        if plan.dim() != m.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "BoundCascade::new",
                expected: m.cols(),
                found: plan.dim(),
            });
        }
        let e0 = plan.ends()[0];
        let prefix = (e0 != m.cols()).then(|| SearchMemory::new(prefix_matrix(m, e0)));
        let row_suffix = row_suffix_table(m, plan.ends());
        Ok(BoundCascade { memory, plan, prefix, row_suffix })
    }

    /// The bound stage plan.
    pub fn plan(&self) -> &CascadePlan {
        &self.plan
    }

    /// The bound memory.
    pub fn memory(&self) -> &SearchMemory {
        &self.memory
    }

    /// Cascade search over the bound memory — bit-identical winners to
    /// [`SearchMemory::winners_batch`], with no per-call re-derivation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the batch
    /// dimensionality differs from the memory's.
    pub fn search(&self, batch: &QueryBatch) -> Result<CascadeResults> {
        let m = self.memory.matrix();
        if batch.dim() != m.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "BoundCascade::search",
                expected: m.cols(),
                found: batch.dim(),
            });
        }
        let scores = match &self.prefix {
            Some(prefix) => {
                let mut out = ScoreMatrix::zeros(batch.len(), m.rows());
                batch::dot_batch_dispatch(prefix.memory_ref(), batch, &mut out);
                out
            }
            None => self.memory.dot_batch(batch).expect("dimension checked above"),
        };
        Ok(cascade_run(m, batch, &self.plan, scores, &self.row_suffix))
    }
}

#[cfg(feature = "rayon")]
fn continuation_dispatch(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    row_suffix: &[u32],
    scores: &mut [u32],
    winners: &mut [(usize, u32)],
    stats: &mut CascadeStats,
) {
    let q = winners.len();
    let rows = m.rows();
    let work = q * rows * m.words_per_row_pub();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if threads < 2 || work < batch::PARALLEL_THRESHOLD || q < 2 * batch::QUERY_TILE {
        continuation_range(m, batch, plan, row_suffix, 0, scores, winners, stats, dot_words);
        return;
    }
    // Chunk queries across threads; each chunk owns disjoint score and
    // winner slices plus its own telemetry, merged after the join —
    // bit-identical to the serial order because queries are independent.
    let chunks = threads.min(q.div_ceil(batch::QUERY_TILE));
    let per_chunk = q.div_ceil(chunks).next_multiple_of(batch::QUERY_TILE);
    type Job<'a> = (usize, &'a mut [u32], &'a mut [(usize, u32)]);
    let mut jobs: Vec<Job<'_>> = Vec::with_capacity(chunks);
    let mut score_rest = scores;
    let mut winner_rest = winners;
    let mut offset = 0usize;
    while !winner_rest.is_empty() {
        let take = per_chunk.min(winner_rest.len());
        let (w_head, w_tail) = winner_rest.split_at_mut(take);
        let (s_head, s_tail) = score_rest.split_at_mut(take * rows);
        jobs.push((offset, s_head, w_head));
        winner_rest = w_tail;
        score_rest = s_tail;
        offset += take;
    }
    let locals: Vec<CascadeStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(q_offset, score_chunk, winner_chunk)| {
                scope.spawn(move || {
                    let mut local = CascadeStats::zeroed(rows, m.cols(), plan.stages());
                    continuation_range(
                        m,
                        batch,
                        plan,
                        row_suffix,
                        q_offset,
                        score_chunk,
                        winner_chunk,
                        &mut local,
                        dot_words,
                    );
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("cascade chunk worker panicked")).collect()
    });
    for local in &locals {
        // Stage-0 counters were set wholesale by the caller and stay 0 in
        // every chunk-local (continuation_range never writes stage 0), so
        // the general merge adds exactly the later stages.
        stats.merge(local);
    }
}

#[cfg(not(feature = "rayon"))]
#[allow(clippy::too_many_arguments)]
fn continuation_dispatch(
    m: &BitMatrix,
    batch: &QueryBatch,
    plan: &CascadePlan,
    row_suffix: &[u32],
    scores: &mut [u32],
    winners: &mut [(usize, u32)],
    stats: &mut CascadeStats,
) {
    continuation_range(m, batch, plan, row_suffix, 0, scores, winners, stats, dot_words);
}

fn check_cascade(m: &BitMatrix, batch: &QueryBatch, plan: &CascadePlan) -> Result<()> {
    if m.rows() == 0 {
        return Err(LinalgError::Empty { op: "search_cascade" });
    }
    if batch.dim() != m.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "search_cascade",
            expected: m.cols(),
            found: batch.dim(),
        });
    }
    if plan.dim() != m.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "search_cascade(plan)",
            expected: m.cols(),
            found: plan.dim(),
        });
    }
    Ok(())
}

impl BitMatrix {
    /// Progressive-precision batched search: prefix-scores every row
    /// with the tiled batched kernels, prunes rows that provably cannot
    /// win (Hamming bound), and finishes only the survivors. Winners
    /// (rows, scores, and the low-row tie-break) are bit-identical to
    /// [`BitMatrix::winners_batch`]; the returned [`CascadeStats`]
    /// reports how many row-dimensions were activated.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the batch or plan
    /// dimensionality differs from `cols`, and [`LinalgError::Empty`]
    /// for a memory with no rows.
    pub fn search_cascade(&self, batch: &QueryBatch, plan: &CascadePlan) -> Result<CascadeResults> {
        check_cascade(self, batch, plan)?;
        Ok(cascade_active(self, batch, plan))
    }
}

impl SearchMemory {
    /// [`BitMatrix::search_cascade`] over this memory's rows. Stage 0
    /// runs the tiled batched sweep over the (boundary-masked) dimension
    /// prefix of every row; the shortlist stages use row-major candidate
    /// access, so wide rows still ride the active SIMD backend through
    /// the flat word kernels.
    ///
    /// # Errors
    ///
    /// As [`BitMatrix::search_cascade`].
    pub fn search_cascade(&self, batch: &QueryBatch, plan: &CascadePlan) -> Result<CascadeResults> {
        let m = self.matrix();
        check_cascade(m, batch, plan)?;
        if plan.stages() == 1 {
            // Degenerate plan on a pre-packed memory: reuse the blocked
            // mirror directly instead of re-packing a full-width prefix.
            let scores = self.dot_batch(batch)?;
            return Ok(cascade_run(m, batch, plan, scores, &[]));
        }
        Ok(cascade_active(m, batch, plan))
    }

    /// [`SearchMemory::search_cascade`] on an explicit backend — the
    /// equivalence-testing hook (serial; no thread chunking; stage 0
    /// runs per-row through the backend's flat word kernel instead of
    /// its tiled sweep, which is bit-identical by the kernel contract).
    ///
    /// # Errors
    ///
    /// As [`BitMatrix::search_cascade`].
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable on this host.
    pub fn search_cascade_with(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
        backend: Backend,
    ) -> Result<CascadeResults> {
        assert!(backend.is_available(), "backend {backend} not available on this host");
        let m = self.matrix();
        check_cascade(m, batch, plan)?;
        let table = kernel::table_for(backend);
        let dot = |a: &[u64], b: &[u64]| (table.dot_words)(a, b);
        let rows = m.rows();
        let q_total = batch.len();
        let ends = plan.ends();
        let e0 = ends[0];
        let w0 = word_end(e0);
        // Serial stage 0 through the explicit backend's flat kernel.
        let mut scores = vec![0u32; q_total * rows];
        let mut qmasked = Vec::new();
        for q in 0..q_total {
            mask_stage(batch.query_words(q), 0, e0, &mut qmasked);
            let out_row = &mut scores[q * rows..(q + 1) * rows];
            for (r, slot) in out_row.iter_mut().enumerate() {
                *slot = dot(&m.row_words_pub(r)[..w0], &qmasked);
            }
        }
        let row_suffix = row_suffix_table(m, ends);
        let mut winners = vec![(0usize, 0u32); q_total];
        let mut stats = CascadeStats::zeroed(rows, m.cols(), plan.stages());
        stats.stage_rows[0] = (q_total * rows) as u64;
        stats.activated_dims = (q_total * rows * e0) as u64;
        continuation_range(
            m,
            batch,
            plan,
            &row_suffix,
            0,
            &mut scores,
            &mut winners,
            &mut stats,
            dot,
        );
        Ok(CascadeResults { winners, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::BitVector;
    use rand::Rng;

    fn random_bits(len: usize, rng: &mut rand::rngs::StdRng) -> BitVector {
        let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
        BitVector::from_bools(&bits)
    }

    #[test]
    fn plan_construction_and_validation() {
        let p = CascadePlan::from_widths(300, &[100, 100, 100]).unwrap();
        assert_eq!((p.dim(), p.stages()), (300, 3));
        assert_eq!(p.widths(), vec![100, 100, 100]);
        assert_eq!(CascadePlan::uniform(10, 3).unwrap().widths(), vec![4, 3, 3]);
        assert_eq!(CascadePlan::prefix(128, 32).unwrap().ends(), &[32, 128]);
        assert_eq!(CascadePlan::exact(64).ends(), &[64]);
        assert!(CascadePlan::from_widths(10, &[]).is_err());
        assert!(CascadePlan::from_widths(10, &[5, 0, 5]).is_err());
        assert!(CascadePlan::from_widths(10, &[5, 6]).is_err());
        assert!(CascadePlan::uniform(4, 5).is_err());
        assert!(CascadePlan::uniform(0, 1).is_err());
        assert!(CascadePlan::prefix(64, 0).is_err());
        assert!(CascadePlan::prefix(64, 64).is_err());
    }

    #[test]
    fn cascade_matches_exact_search() {
        let mut rng = seeded(21);
        for dim in [1usize, 63, 64, 65, 130, 300] {
            let rows: Vec<BitVector> = (0..13).map(|_| random_bits(dim, &mut rng)).collect();
            let mem = SearchMemory::from_rows(&rows).unwrap();
            let queries: Vec<BitVector> = (0..17).map(|_| random_bits(dim, &mut rng)).collect();
            let batch = QueryBatch::from_vectors(&queries).unwrap();
            let reference = mem.winners_batch(&batch).unwrap();
            for plan in [
                CascadePlan::exact(dim),
                CascadePlan::uniform(dim, dim.min(4)).unwrap(),
                CascadePlan::uniform(dim, dim).unwrap(), // one dim per stage
            ] {
                let out = mem.search_cascade(&batch, &plan).unwrap();
                assert_eq!(out.winners(), reference.as_slice(), "dim {dim} plan {plan:?}");
            }
        }
    }

    #[test]
    fn exact_plan_telemetry_is_full_activation() {
        let mut rng = seeded(22);
        let rows: Vec<BitVector> = (0..9).map(|_| random_bits(130, &mut rng)).collect();
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let queries: Vec<BitVector> = (0..5).map(|_| random_bits(130, &mut rng)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let out = mem.search_cascade(&batch, &CascadePlan::exact(130)).unwrap();
        let stats = out.stats();
        assert_eq!(stats.queries(), 5);
        assert_eq!(stats.activated_dims(), stats.exact_dims());
        assert_eq!(stats.exact_dims(), 5 * 9 * 130);
        assert!((stats.activation_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(stats.stage_rows(), &[5 * 9]);
    }

    #[test]
    fn pruning_fires_on_separable_rows() {
        // One hot row matches the query everywhere; the others are its
        // complement — after a one-word prefix, all cold rows are pruned.
        let dim = 256;
        let hot = BitVector::ones(dim);
        let cold = BitVector::zeros(dim);
        let rows = vec![cold.clone(), hot.clone(), cold.clone(), cold];
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&[hot]).unwrap();
        let plan = CascadePlan::prefix(dim, 64).unwrap();
        let out = mem.search_cascade(&batch, &plan).unwrap();
        assert_eq!(out.winner(0), (1, 256));
        let stats = out.stats();
        assert!(stats.activated_dims() < stats.exact_dims());
        // Stage 0 admits all 4 rows; only the hot row survives to stage 1.
        assert_eq!(stats.stage_rows(), &[4, 1]);
        assert_eq!(stats.activated_dims(), 4 * 64 + 192);
    }

    #[test]
    fn tie_break_survives_pruning() {
        // Rows 1 and 3 are identical and tie; pruning must not discard
        // the lower-index tying row.
        let mut rng = seeded(23);
        let pattern = random_bits(100, &mut rng);
        let rows =
            vec![BitVector::zeros(100), pattern.clone(), BitVector::zeros(100), pattern.clone()];
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(std::slice::from_ref(&pattern)).unwrap();
        for plan in [
            CascadePlan::exact(100),
            CascadePlan::prefix(100, 30).unwrap(),
            CascadePlan::uniform(100, 100).unwrap(),
        ] {
            let out = mem.search_cascade(&batch, &plan).unwrap();
            assert_eq!(out.winner(0), (1, pattern.count_ones()), "{plan:?}");
        }
    }

    #[test]
    fn stats_merge_is_additive() {
        let mut a = CascadeStats::zeroed(4, 128, 2);
        a.queries = 3;
        a.activated_dims = 100;
        a.stage_rows = vec![12, 4];
        let mut b = CascadeStats::zeroed(4, 128, 2);
        b.queries = 2;
        b.activated_dims = 50;
        b.stage_rows = vec![8, 2];
        a.merge(&b);
        assert_eq!(a.queries(), 5);
        assert_eq!(a.activated_dims(), 150);
        assert_eq!(a.stage_rows(), &[20, 6]);
    }

    #[test]
    fn dimension_and_plan_mismatches_rejected() {
        let mem = SearchMemory::new(BitMatrix::zeros(2, 64));
        let batch = QueryBatch::from_vectors(&[BitVector::zeros(64)]).unwrap();
        let wrong_batch = QueryBatch::from_vectors(&[BitVector::zeros(65)]).unwrap();
        assert!(matches!(
            mem.search_cascade(&wrong_batch, &CascadePlan::exact(64)),
            Err(LinalgError::ShapeMismatch { op: "search_cascade", .. })
        ));
        assert!(matches!(
            mem.search_cascade(&batch, &CascadePlan::exact(65)),
            Err(LinalgError::ShapeMismatch { op: "search_cascade(plan)", .. })
        ));
    }

    #[test]
    fn mask_stage_partitions_bits_exactly() {
        let mut rng = seeded(24);
        let q = random_bits(200, &mut rng);
        let row = random_bits(200, &mut rng);
        // Any split into stages must reproduce the full dot exactly.
        for plan in [
            CascadePlan::uniform(200, 7).unwrap(),
            CascadePlan::from_widths(200, &[1, 63, 64, 65, 7]).unwrap(),
        ] {
            let mut total = 0u32;
            let mut masked = Vec::new();
            let mut lo = 0usize;
            for &hi in plan.ends() {
                mask_stage(q.as_words(), lo, hi, &mut masked);
                let (wlo, whi) = (lo / 64, word_end(hi));
                total += dot_words(&row.as_words()[wlo..whi], &masked);
                lo = hi;
            }
            assert_eq!(total, q.dot(&row), "{plan:?}");
        }
    }
}
