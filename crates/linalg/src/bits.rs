//! Bit-packed binary vectors and matrices.
//!
//! Binary hypervectors in MEMHD take values in `{0, 1}` and are compared
//! with *dot similarity*, which for binary operands is the popcount of the
//! bitwise AND. Packing 64 components per `u64` word makes an associative
//! search over a whole memory a handful of popcount instructions per class
//! vector — the software analogue of the single-cycle in-memory MVM the
//! paper maps onto SRAM arrays.

use crate::error::{LinalgError, Result};

const WORD_BITS: usize = 64;

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Mask selecting the valid bits of the final word of a `len`-bit vector.
#[inline]
fn tail_mask(len: usize) -> u64 {
    let rem = len % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// A bit-packed binary (`{0,1}`) vector.
///
/// The unused bits of the final storage word are always zero, so popcount
/// based operations never see garbage.
///
/// # Example
///
/// ```
/// use hd_linalg::BitVector;
///
/// let a = BitVector::from_bools(&[true, true, false]);
/// let b = BitVector::from_bools(&[true, false, false]);
/// assert_eq!(a.dot(&b), 1);
/// assert_eq!(a.hamming(&b), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVector {
    len: usize,
    words: Vec<u64>,
}

impl BitVector {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVector { len, words: vec![0; words_for(len)] }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVector { len, words: vec![u64::MAX; words_for(len)] };
        v.mask_tail();
        v
    }

    /// Builds a vector from booleans (`true` ⇒ 1).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVector::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector by thresholding `values`: bit `i` is 1 iff
    /// `values[i] > threshold`.
    ///
    /// This is the 1-bit quantization primitive of the paper (§III-B):
    /// MEMHD binarizes the floating-point associative memory at its mean.
    pub fn from_threshold(values: &[f32], threshold: f32) -> Self {
        let mut v = BitVector::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x > threshold {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector by thresholding `values` at their own mean.
    pub fn from_mean_threshold(values: &[f32]) -> Self {
        Self::from_threshold(values, crate::vector::mean(values))
    }

    /// Reconstructs a vector from its packed word representation (the
    /// inverse of [`BitVector::as_words`]), for deserialization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the word count does not
    /// match `len`, and [`LinalgError::IndexOutOfBounds`] if bits beyond
    /// `len` are set in the final word.
    pub fn from_words(len: usize, words: Vec<u64>) -> Result<Self> {
        if words.len() != words_for(len) {
            return Err(LinalgError::ShapeMismatch {
                op: "from_words",
                expected: words_for(len),
                found: words.len(),
            });
        }
        if let Some(&last) = words.last() {
            if last & !tail_mask(len) != 0 {
                return Err(LinalgError::IndexOutOfBounds { index: len, bound: len });
            }
        }
        Ok(BitVector { len, words })
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds for length {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds for length {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Dot similarity for binary vectors: `popcount(a AND b)`.
    ///
    /// This is the similarity measure of paper Eq. (3) specialized to
    /// `{0,1}` operands, and the quantity an IMC array computes per column.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVector) -> u32 {
        assert_eq!(self.len, other.len, "dot: length mismatch ({} vs {})", self.len, other.len);
        crate::batch::dot_words(&self.words, &other.words)
    }

    /// Hamming distance: `popcount(a XOR b)`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &BitVector) -> u32 {
        assert_eq!(self.len, other.len, "hamming: length mismatch ({} vs {})", self.len, other.len);
        crate::batch::hamming_words(&self.words, &other.words)
    }

    /// Expands to a `{0.0, 1.0}` float vector.
    pub fn to_f32(&self) -> Vec<f32> {
        (0..self.len).map(|i| if self.get(i) { 1.0 } else { 0.0 }).collect()
    }

    /// Selective sum: `Σ values[i]` over set bits `i`.
    ///
    /// Equivalent to the dot product of this binary vector with a real
    /// vector — the kernel of binary random-projection encoding.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn dot_f32(&self, values: &[f32]) -> f32 {
        assert_eq!(
            values.len(),
            self.len,
            "dot_f32: length mismatch ({} vs {})",
            values.len(),
            self.len
        );
        let mut acc = 0.0f32;
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            let base = wi * WORD_BITS;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                acc += values[base + bit];
                w &= w - 1;
            }
        }
        acc
    }

    /// Returns a copy rotated left by `k` positions (bit `i` moves to
    /// `(i + k) mod len`).
    ///
    /// Cyclic shifts are the classic HDC *permutation* operation: they
    /// produce a vector nearly orthogonal to the original, which n-gram
    /// text encoders use to mark symbol positions.
    pub fn rotate_left(&self, k: usize) -> BitVector {
        if self.len == 0 {
            return self.clone();
        }
        let k = k % self.len;
        let mut out = BitVector::zeros(self.len);
        for i in self.iter_ones() {
            out.set((i + k) % self.len, true);
        }
        out
    }

    /// Bitwise XOR — HDC's binding operator for binary hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &BitVector) -> BitVector {
        assert_eq!(self.len, other.len, "xor: length mismatch ({} vs {})", self.len, other.len);
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a ^ b).collect();
        BitVector { len: self.len, words }
    }

    /// Copies out the `len`-bit sub-vector starting at bit `start`, using
    /// word-level shifts (the segment-extraction primitive of partitioned
    /// IMC mappings).
    ///
    /// # Panics
    ///
    /// Panics if `start + len > self.len()`.
    pub fn slice(&self, start: usize, len: usize) -> BitVector {
        assert!(
            start + len <= self.len,
            "slice [{start}, {start}+{len}) out of bounds for length {}",
            self.len
        );
        slice_packed(&self.words, start, len)
    }

    /// Borrows this vector as a zero-copy [`BitView`].
    #[inline]
    pub fn as_view(&self) -> BitView<'_> {
        BitView { len: self.len, words: &self.words }
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes { vec: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Zeroes any bits beyond `len` in the last word, restoring the
    /// invariant relied on by popcount operations.
    fn mask_tail(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.len);
        }
    }

    /// Raw packed words (little-endian bit order within each word).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

/// Word-shift extraction of a `len`-bit span starting at bit `start` of a
/// packed word buffer (bits beyond the buffer read as zero).
fn slice_packed(words: &[u64], start: usize, len: usize) -> BitVector {
    let mut out = BitVector::zeros(len);
    if len == 0 {
        return out;
    }
    let word_off = start / WORD_BITS;
    let bit_off = start % WORD_BITS;
    for i in 0..out.words.len() {
        let lo = words.get(word_off + i).copied().unwrap_or(0) >> bit_off;
        let hi = if bit_off == 0 {
            0
        } else {
            words.get(word_off + i + 1).copied().unwrap_or(0) << (WORD_BITS - bit_off)
        };
        out.words[i] = lo | hi;
    }
    out.mask_tail();
    out
}

/// A borrowed, zero-copy view of one bit-packed row — what
/// [`crate::QueryBatch::query`] and [`BitMatrix::row_view`] hand out
/// instead of allocating a fresh [`BitVector`] per call.
///
/// The view supports the read-side operations of [`BitVector`] (dot,
/// Hamming, segment extraction, bit access) directly on the borrowed
/// words; [`BitView::to_bit_vector`] makes an owned copy when one is
/// genuinely needed.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitVector, QueryBatch};
///
/// let queries = vec![BitVector::from_bools(&[true, false, true])];
/// let batch = QueryBatch::from_vectors(&queries).unwrap();
/// let view = batch.query(0); // no allocation
/// assert_eq!(view, queries[0]);
/// assert_eq!(view.dot(&queries[0]), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BitView<'a> {
    len: usize,
    words: &'a [u64],
}

impl<'a> BitView<'a> {
    /// Wraps already-packed words whose tail past `len` bits is known
    /// clean (the invariant every packed row in the crate maintains).
    #[inline]
    pub(crate) fn from_clean_words(words: &'a [u64], len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(WORD_BITS));
        debug_assert!(
            len.is_multiple_of(WORD_BITS)
                || words.last().is_none_or(|&w| w >> (len % WORD_BITS) == 0),
            "tail bits past the view length must be zero"
        );
        BitView { len, words }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds for length {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Dot similarity (`popcount(a AND b)`) against an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVector) -> u32 {
        self.dot_view(other.as_view())
    }

    /// Dot similarity against another view.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot_view(&self, other: BitView<'_>) -> u32 {
        assert_eq!(self.len, other.len, "dot: length mismatch ({} vs {})", self.len, other.len);
        crate::batch::dot_words(self.words, other.words)
    }

    /// Hamming distance (`popcount(a XOR b)`) against an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &BitVector) -> u32 {
        self.hamming_view(other.as_view())
    }

    /// Hamming distance against another view.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_view(&self, other: BitView<'_>) -> u32 {
        assert_eq!(self.len, other.len, "hamming: length mismatch ({} vs {})", self.len, other.len);
        crate::batch::hamming_words(self.words, other.words)
    }

    /// Copies out the `len`-bit sub-vector starting at `start` (the only
    /// allocation a segment extraction needs — the source stays borrowed).
    ///
    /// # Panics
    ///
    /// Panics if `start + len > self.len()`.
    pub fn slice(&self, start: usize, len: usize) -> BitVector {
        assert!(
            start + len <= self.len,
            "slice [{start}, {start}+{len}) out of bounds for length {}",
            self.len
        );
        slice_packed(self.words, start, len)
    }

    /// Makes an owned copy.
    pub fn to_bit_vector(&self) -> BitVector {
        BitVector { len: self.len, words: self.words.to_vec() }
    }

    /// The borrowed packed words.
    #[inline]
    pub fn as_words(&self) -> &'a [u64] {
        self.words
    }
}

impl PartialEq for BitView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Eq for BitView<'_> {}

impl PartialEq<BitVector> for BitView<'_> {
    fn eq(&self, other: &BitVector) -> bool {
        self.len == other.len && self.words == &other.words[..]
    }
}

impl PartialEq<BitView<'_>> for BitVector {
    fn eq(&self, other: &BitView<'_>) -> bool {
        other == self
    }
}

impl<'a> From<&'a BitVector> for BitView<'a> {
    fn from(v: &'a BitVector) -> Self {
        v.as_view()
    }
}

/// Iterator over set-bit indices of a [`BitVector`], produced by
/// [`BitVector::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    vec: &'a BitVector,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

/// A matrix of bit-packed binary rows.
///
/// MEMHD's binary associative memory stores one class vector per IMC array
/// *column*; in software we keep each class vector as one bit-packed *row*
/// so an associative search is a row-wise popcount sweep
/// ([`BitMatrix::dot_all`]).
///
/// # Example
///
/// ```
/// use hd_linalg::{BitMatrix, BitVector};
///
/// let rows = vec![
///     BitVector::from_bools(&[true, false, true]),
///     BitVector::from_bools(&[false, true, true]),
/// ];
/// let m = BitMatrix::from_rows(&rows).unwrap();
/// let q = BitVector::from_bools(&[true, true, true]);
/// assert_eq!(m.dot_all(&q), vec![2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` bit matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let wpr = words_for(cols);
        BitMatrix { rows, cols, words_per_row: wpr, data: vec![0; rows * wpr] }
    }

    /// Builds a matrix from equal-length [`BitVector`] rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row set and
    /// [`LinalgError::RaggedRows`] if rows disagree on length.
    pub fn from_rows(rows: &[BitVector]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { op: "BitMatrix::from_rows" });
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows { first: cols, row: i, len: r.len() });
            }
        }
        let wpr = words_for(cols);
        let mut data = Vec::with_capacity(rows.len() * wpr);
        for r in rows {
            data.extend_from_slice(r.as_words());
        }
        Ok(BitMatrix { rows: rows.len(), cols, words_per_row: wpr, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    fn row_words(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Packed words of row `r` — crate-internal access for the batched
    /// kernels in [`crate::batch`].
    #[inline]
    pub(crate) fn row_words_pub(&self, r: usize) -> &[u64] {
        self.row_words(r)
    }

    /// Words per packed row — crate-internal access for kernel dispatch in
    /// [`crate::batch`].
    #[inline]
    pub(crate) fn words_per_row_pub(&self) -> usize {
        self.words_per_row
    }

    /// The full packed word buffer (row-major) — crate-internal access for
    /// the fixed-width batched kernels.
    #[inline]
    pub(crate) fn data_words_pub(&self) -> &[u64] {
        &self.data
    }

    /// Returns bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "bit index ({r},{c}) out of bounds");
        (self.row_words(r)[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.rows && c < self.cols, "bit index ({r},{c}) out of bounds");
        let idx = r * self.words_per_row + c / WORD_BITS;
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            self.data[idx] |= mask;
        } else {
            self.data[idx] &= !mask;
        }
    }

    /// Copies row `r` out as a [`BitVector`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> BitVector {
        assert!(r < self.rows, "row index {r} out of bounds");
        BitVector { len: self.cols, words: self.row_words(r).to_vec() }
    }

    /// Borrows row `r` as a zero-copy [`BitView`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_view(&self, r: usize) -> BitView<'_> {
        assert!(r < self.rows, "row index {r} out of bounds");
        BitView { len: self.cols, words: self.row_words(r) }
    }

    /// Overwrites row `r` with `values`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `values.len() != cols`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn set_row(&mut self, r: usize, values: &BitVector) -> Result<()> {
        assert!(r < self.rows, "row index {r} out of bounds");
        if values.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "set_row",
                expected: self.cols,
                found: values.len(),
            });
        }
        let start = r * self.words_per_row;
        self.data[start..start + self.words_per_row].copy_from_slice(values.as_words());
        Ok(())
    }

    /// Wraps pre-packed row-major words (tails already clean) — the
    /// zero-repack constructor behind [`crate::QueryBatchBuilder`].
    #[inline]
    pub(crate) fn from_raw_words(rows: usize, cols: usize, data: Vec<u64>) -> Self {
        let words_per_row = words_for(cols);
        debug_assert_eq!(data.len(), rows * words_per_row);
        BitMatrix { rows, cols, words_per_row, data }
    }

    /// Copies rows `[start, start + count)` into a new matrix — the
    /// row-major side of shard splitting (see
    /// [`crate::SearchMemory::split_rows`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `count == 0` and
    /// [`LinalgError::IndexOutOfBounds`] when the range overruns `rows()`.
    pub fn row_range(&self, start: usize, count: usize) -> Result<BitMatrix> {
        if count == 0 {
            return Err(LinalgError::Empty { op: "BitMatrix::row_range" });
        }
        let end = start.checked_add(count).filter(|&e| e <= self.rows).ok_or_else(|| {
            LinalgError::IndexOutOfBounds {
                index: start.saturating_add(count) - 1,
                bound: self.rows,
            }
        })?;
        let wpr = self.words_per_row;
        Ok(BitMatrix {
            rows: count,
            cols: self.cols,
            words_per_row: wpr,
            data: self.data[start * wpr..end * wpr].to_vec(),
        })
    }

    /// Dot similarity of row `r` with a binary query.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or `r >= rows`.
    pub fn row_dot(&self, r: usize, query: &BitVector) -> u32 {
        assert!(r < self.rows, "row index {r} out of bounds");
        assert_eq!(query.len(), self.cols, "row_dot: query length mismatch");
        crate::batch::dot_words(self.row_words(r), query.as_words())
    }

    /// Dot similarity of every row with a binary query — a full associative
    /// search (one in-memory MVM in the paper's architecture).
    ///
    /// This is the single-query slice of the batched kernel
    /// ([`BitMatrix::dot_batch`]); both paths reduce to the same word-level
    /// popcount implementation. Prefer the batched entry point when
    /// answering many queries.
    ///
    /// # Panics
    ///
    /// Panics if the query length differs from `cols`.
    pub fn dot_all(&self, query: &BitVector) -> Vec<u32> {
        assert_eq!(query.len(), self.cols, "dot_all: query length mismatch");
        let qw = query.as_words();
        (0..self.rows).map(|r| crate::batch::dot_words(self.row_words(r), qw)).collect()
    }

    /// Dot product of every row with a real-valued input — a binary-weight
    /// MVM (`y = B·x`), the kernel of binary random-projection encoding.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_f32(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec_f32: input length mismatch");
        (0..self.rows)
            .map(|r| {
                let mut acc = 0.0f32;
                for (wi, &word) in self.row_words(r).iter().enumerate() {
                    let mut w = word;
                    let base = wi * WORD_BITS;
                    while w != 0 {
                        let bit = w.trailing_zeros() as usize;
                        acc += x[base + bit];
                        w &= w - 1;
                    }
                }
                acc
            })
            .collect()
    }

    /// Total number of set bits in the matrix.
    pub fn count_ones(&self) -> u64 {
        self.data.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Memory footprint of the payload in bits (`rows × cols`), the
    /// quantity the paper's memory-requirement comparisons use.
    pub fn payload_bits(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Bitwise majority vote across equally-shaped matrices: output bit
    /// `(r, c)` is set iff a **strict** majority of the replicas set it.
    /// Exact for an odd replica count; with an even count an exact tie
    /// (`R/2` votes) resolves to 0. See [`majority_words`].
    ///
    /// This is the digital model of replicated-array readout: the same
    /// logical memory programmed onto `R` independently-faulted physical
    /// arrays reads back with per-cell error `O(p^2)` instead of `O(p)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty replica slice and
    /// [`LinalgError::ShapeMismatch`] when the shapes disagree.
    pub fn bitwise_majority(replicas: &[&BitMatrix]) -> Result<BitMatrix> {
        let first = replicas.first().ok_or(LinalgError::Empty { op: "bitwise_majority" })?;
        for m in replicas {
            if m.shape() != first.shape() {
                let (expected, found) =
                    if m.cols != first.cols { (first.cols, m.cols) } else { (first.rows, m.rows) };
                return Err(LinalgError::ShapeMismatch { op: "bitwise_majority", expected, found });
            }
        }
        let mut out = BitMatrix::zeros(first.rows, first.cols);
        let words: Vec<&[u64]> = replicas.iter().map(|m| m.data.as_slice()).collect();
        // Row tails are clean in every replica, so the word-level vote
        // keeps them clean in the output (zero votes never win).
        majority_words(&words, &mut out.data);
        Ok(out)
    }
}

/// Word-level bitwise majority vote: `out` bit `i` is set iff a
/// **strict** majority (`> R/2`) of the `R` replica slices set bit `i`.
/// Exact for odd `R`; with even `R` an exact tie (`R/2` votes) resolves
/// to 0, so prefer odd replication. `R == 1` is a plain copy.
///
/// The vote runs entirely on packed words: replica words accumulate into
/// `ceil(log2(R+1))` bit-sliced counter planes (a carry-save adder per
/// bit lane), and the threshold compare is a bitwise borrow ripple — no
/// per-bit extraction anywhere, so voting costs `O(R log R)` word ops
/// per output word.
///
/// # Panics
///
/// Panics when `replicas` is empty or any slice length differs from
/// `out`'s (the [`BitVector::majority`] / [`BitMatrix::bitwise_majority`]
/// wrappers validate and return errors instead).
pub fn majority_words(replicas: &[&[u64]], out: &mut [u64]) {
    assert!(!replicas.is_empty(), "majority_words: no replicas");
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.len(), out.len(), "majority_words: replica {i} length mismatch");
    }
    match replicas {
        [only] => out.copy_from_slice(only),
        [a, b, c] => {
            // Majority-of-3: one word of carry-save logic per lane.
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = (a[i] & b[i]) | ((a[i] | b[i]) & c[i]);
            }
        }
        _ => {
            let r = replicas.len();
            let threshold = r / 2 + 1;
            // Planes enough to count up to R without overflow.
            let planes = (usize::BITS - r.leading_zeros()) as usize;
            let mut counter = vec![0u64; planes];
            for (i, slot) in out.iter_mut().enumerate() {
                counter.iter_mut().for_each(|p| *p = 0);
                for rep in replicas {
                    // Carry-save add of one vote into the bit-sliced
                    // counter (64 lanes at once).
                    let mut carry = rep[i];
                    for plane in counter.iter_mut() {
                        let t = *plane & carry;
                        *plane ^= carry;
                        carry = t;
                        if carry == 0 {
                            break;
                        }
                    }
                }
                // Bitwise compare `counter >= threshold` per lane via the
                // borrow ripple of `counter - threshold`: a lane ends with
                // no borrow exactly when its count reached the threshold.
                let mut borrow = 0u64;
                for (j, &plane) in counter.iter().enumerate() {
                    let t = if (threshold >> j) & 1 == 1 { u64::MAX } else { 0 };
                    borrow = (!plane & (t | borrow)) | (t & borrow);
                }
                *slot = !borrow;
            }
        }
    }
}

impl BitVector {
    /// Bitwise majority vote across equally-sized vectors (see
    /// [`majority_words`]): bit `i` of the result is set iff a strict
    /// majority of the replicas set it. Exact for odd replica counts.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty replica slice and
    /// [`LinalgError::ShapeMismatch`] when the lengths disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::BitVector;
    ///
    /// let a = BitVector::from_bools(&[true, true, false]);
    /// let b = BitVector::from_bools(&[true, false, false]);
    /// let c = BitVector::from_bools(&[false, true, true]);
    /// let m = BitVector::majority(&[&a, &b, &c]).unwrap();
    /// assert_eq!(m, BitVector::from_bools(&[true, true, false]));
    /// ```
    pub fn majority(replicas: &[&BitVector]) -> Result<BitVector> {
        let first = replicas.first().ok_or(LinalgError::Empty { op: "majority" })?;
        for v in replicas {
            if v.len != first.len {
                return Err(LinalgError::ShapeMismatch {
                    op: "majority",
                    expected: first.len,
                    found: v.len,
                });
            }
        }
        let mut out = BitVector::zeros(first.len);
        let words: Vec<&[u64]> = replicas.iter().map(|v| v.words.as_slice()).collect();
        majority_words(&words, &mut out.words);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_counts() {
        assert_eq!(BitVector::zeros(100).count_ones(), 0);
        assert_eq!(BitVector::ones(100).count_ones(), 100);
    }

    #[test]
    fn tail_bits_masked() {
        let v = BitVector::ones(65);
        assert_eq!(v.count_ones(), 65);
        assert_eq!(v.as_words().len(), 2);
        assert_eq!(v.as_words()[1], 1);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVector::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn from_words_roundtrip() {
        let mut v = BitVector::zeros(70);
        v.set(0, true);
        v.set(69, true);
        let back = BitVector::from_words(70, v.as_words().to_vec()).unwrap();
        assert_eq!(back, v);
        // Wrong word count rejected.
        assert!(BitVector::from_words(70, vec![0]).is_err());
        // Garbage in the tail rejected.
        assert!(BitVector::from_words(70, vec![0, u64::MAX]).is_err());
    }

    #[test]
    fn dot_and_hamming_known() {
        let a = BitVector::from_bools(&[true, true, false, true]);
        let b = BitVector::from_bools(&[true, false, false, true]);
        assert_eq!(a.dot(&b), 2);
        assert_eq!(a.hamming(&b), 1);
    }

    #[test]
    fn threshold_construction() {
        let v = BitVector::from_threshold(&[0.1, 0.9, 0.5, 0.4999], 0.5);
        assert_eq!(v.to_f32(), vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_threshold_centers() {
        // mean = 2.5 -> bits above the mean are 3 and 4
        let v = BitVector::from_mean_threshold(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.to_f32(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn dot_f32_matches_expanded() {
        let bits = BitVector::from_bools(&[true, false, true, true, false]);
        let x = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let expanded: f32 = bits.to_f32().iter().zip(x.iter()).map(|(b, v)| b * v).sum();
        assert_eq!(bits.dot_f32(&x), expanded);
    }

    #[test]
    fn rotate_left_moves_bits_cyclically() {
        let v = BitVector::from_bools(&[true, false, false, true, false]);
        let r = v.rotate_left(2);
        assert_eq!(r.to_f32(), vec![1.0, 0.0, 1.0, 0.0, 0.0]);
        // Full rotation is the identity; popcount is invariant.
        assert_eq!(v.rotate_left(5), v);
        assert_eq!(v.rotate_left(3).count_ones(), v.count_ones());
        // Rotating an empty vector is a no-op.
        assert_eq!(BitVector::zeros(0).rotate_left(7).len(), 0);
    }

    #[test]
    fn xor_binding_properties() {
        let a = BitVector::from_bools(&[true, true, false, false]);
        let b = BitVector::from_bools(&[true, false, true, false]);
        let bound = a.xor(&b);
        assert_eq!(bound.to_f32(), vec![0.0, 1.0, 1.0, 0.0]);
        // Self-inverse: unbinding recovers the operand.
        assert_eq!(bound.xor(&b), a);
        assert_eq!(a.xor(&a), BitVector::zeros(4));
    }

    #[test]
    fn iter_ones_order() {
        let mut v = BitVector::zeros(200);
        for i in [3usize, 64, 70, 199] {
            v.set(i, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 70, 199]);
    }

    #[test]
    fn iter_ones_empty() {
        assert_eq!(BitVector::zeros(10).iter_ones().count(), 0);
        assert_eq!(BitVector::zeros(0).iter_ones().count(), 0);
    }

    #[test]
    fn bitmatrix_roundtrip() {
        let rows = vec![
            BitVector::from_bools(&[true, false, true]),
            BitVector::from_bools(&[false, true, false]),
        ];
        let m = BitMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(0), rows[0]);
        assert_eq!(m.row(1), rows[1]);
        assert!(m.get(0, 2));
        assert!(!m.get(1, 2));
    }

    #[test]
    fn bitmatrix_ragged_rejected() {
        let rows = vec![BitVector::zeros(3), BitVector::zeros(4)];
        assert!(matches!(BitMatrix::from_rows(&rows), Err(LinalgError::RaggedRows { row: 1, .. })));
    }

    #[test]
    fn bitmatrix_empty_rejected() {
        assert!(matches!(BitMatrix::from_rows(&[]), Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn dot_all_matches_row_dots() {
        let rows = vec![
            BitVector::from_bools(&[true, true, false, true]),
            BitVector::from_bools(&[false, true, true, true]),
        ];
        let m = BitMatrix::from_rows(&rows).unwrap();
        let q = BitVector::from_bools(&[true, true, true, false]);
        assert_eq!(m.dot_all(&q), vec![m.row_dot(0, &q), m.row_dot(1, &q)]);
        assert_eq!(m.dot_all(&q), vec![2, 2]);
    }

    #[test]
    fn matvec_f32_matches_dense() {
        let rows = vec![
            BitVector::from_bools(&[true, false, true, true]),
            BitVector::from_bools(&[false, false, false, true]),
        ];
        let m = BitMatrix::from_rows(&rows).unwrap();
        let x = [0.5f32, 1.5, 2.5, 3.5];
        assert_eq!(m.matvec_f32(&x), vec![6.5, 3.5]);
    }

    #[test]
    fn set_row_and_counts() {
        let mut m = BitMatrix::zeros(2, 70);
        let r = BitVector::ones(70);
        m.set_row(1, &r).unwrap();
        assert_eq!(m.count_ones(), 70);
        assert_eq!(m.payload_bits(), 140);
        assert!(m.set_row(0, &BitVector::zeros(3)).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        BitVector::zeros(3).dot(&BitVector::zeros(4));
    }

    /// Per-bit reference vote to pin the word-level kernel against.
    fn naive_majority(replicas: &[&BitVector]) -> BitVector {
        let len = replicas[0].len();
        let mut out = BitVector::zeros(len);
        for i in 0..len {
            let votes = replicas.iter().filter(|v| v.get(i)).count();
            if votes > replicas.len() / 2 {
                out.set(i, true);
            }
        }
        out
    }

    fn pseudo_random_vector(len: usize, seed: u64) -> BitVector {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let bools: Vec<bool> = (0..len).map(|_| next() & 1 == 1).collect();
        BitVector::from_bools(&bools)
    }

    #[test]
    fn majority_matches_naive_for_odd_and_even_counts() {
        for len in [1usize, 63, 64, 65, 200] {
            for r in 1..=6usize {
                let owned: Vec<BitVector> =
                    (0..r).map(|i| pseudo_random_vector(len, (len * 31 + i) as u64)).collect();
                let refs: Vec<&BitVector> = owned.iter().collect();
                let got = BitVector::majority(&refs).unwrap();
                assert_eq!(got, naive_majority(&refs), "len={len} r={r}");
                assert_eq!(got.count_ones() as usize, got.iter_ones().count());
            }
        }
    }

    #[test]
    fn majority_of_one_is_identity() {
        let v = pseudo_random_vector(130, 7);
        assert_eq!(BitVector::majority(&[&v]).unwrap(), v);
    }

    #[test]
    fn majority_even_tie_resolves_to_zero() {
        let a = BitVector::ones(70);
        let b = BitVector::zeros(70);
        let m = BitVector::majority(&[&a, &b]).unwrap();
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn majority_keeps_tail_clean() {
        // len=70 leaves 58 padding bits in the final word; all-ones
        // replicas must still produce a clean tail.
        let a = BitVector::ones(70);
        let b = BitVector::ones(70);
        let c = BitVector::ones(70);
        let m = BitVector::majority(&[&a, &b, &c]).unwrap();
        assert_eq!(m, BitVector::ones(70));
        assert_eq!(m.count_ones(), 70);
        // Round-trip through the validating constructor proves the tail
        // words carry no stray bits.
        assert!(BitVector::from_words(70, m.as_words().to_vec()).is_ok());
    }

    #[test]
    fn majority_rejects_empty_and_mismatched() {
        assert!(matches!(BitVector::majority(&[]), Err(LinalgError::Empty { .. })));
        let a = BitVector::zeros(10);
        let b = BitVector::zeros(11);
        assert!(matches!(
            BitVector::majority(&[&a, &b]),
            Err(LinalgError::ShapeMismatch { expected: 10, found: 11, .. })
        ));
    }

    #[test]
    fn matrix_majority_votes_per_cell() {
        let rows_a = vec![BitVector::ones(65), BitVector::zeros(65)];
        let rows_b = vec![BitVector::ones(65), BitVector::ones(65)];
        let rows_c = vec![BitVector::zeros(65), BitVector::zeros(65)];
        let a = BitMatrix::from_rows(&rows_a).unwrap();
        let b = BitMatrix::from_rows(&rows_b).unwrap();
        let c = BitMatrix::from_rows(&rows_c).unwrap();
        let m = BitMatrix::bitwise_majority(&[&a, &b, &c]).unwrap();
        assert_eq!(m.row(0), BitVector::ones(65));
        assert_eq!(m.row(1), BitVector::zeros(65));
    }

    #[test]
    fn matrix_majority_rejects_shape_mismatch() {
        let a = BitMatrix::zeros(2, 8);
        let b = BitMatrix::zeros(3, 8);
        assert!(matches!(
            BitMatrix::bitwise_majority(&[&a, &b]),
            Err(LinalgError::ShapeMismatch { expected: 2, found: 3, .. })
        ));
        assert!(matches!(BitMatrix::bitwise_majority(&[]), Err(LinalgError::Empty { .. })));
    }
}
