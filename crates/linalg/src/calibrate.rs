//! Once-per-host micro-calibration of the cascade tuner's cost model.
//!
//! [`crate::CascadePlan::tuned`] scores candidate stage plans with a
//! deterministic cost model: a tiled stage-0 SIMD sweep priced at one
//! unit per row-word, a per-row pruning continuation priced at a
//! multiple of that, and fixed per-row / per-(query, stage) overheads.
//! Those relative prices used to be hand-tuned constants; they are
//! really properties of the host's kernels (how much faster the
//! register-tiled sweep is than the shortlist-indirected continuation on
//! *this* CPU with *this* dispatched backend). This module measures them
//! once per host by timing the two real kernels — the blocked
//! winners sweep and the `multi_dot_words` continuation, both through
//! the same dispatch table the search paths use — on a small synthetic
//! workload, and caches the result so every later process (and every
//! later call in this one) resolves the same [`CostModel`].
//!
//! Resolution order of [`CostModel::active`]:
//!
//! 1. `HD_LINALG_CALIBRATION` env override: `fallback` (or `off`) pins
//!    the compiled-in [`CostModel::fallback`] constants; `measure`
//!    forces a fresh measurement (ignoring the cache, still writing
//!    it); an explicit `cont=4.0,row=2.0,stage=8.0` triple pins exact
//!    values. Unrecognized values warn once and fall back.
//! 2. A scalar kernel backend — the `force-scalar` feature or
//!    `HD_LINALG_BACKEND=scalar` — resolves to the fallback constants:
//!    both "kernels" are the same portable loop there, so timing them
//!    says nothing, and the scalar-forced CI leg stays reproducible.
//! 3. The per-host cache file (`HD_LINALG_CALIBRATION_CACHE`, else
//!    `$XDG_CACHE_HOME`/`$HOME/.cache` under `hd-linalg/`, else the
//!    system temp dir), keyed by kernel backend.
//! 4. A fresh [`CostModel::measure`], persisted to the cache
//!    best-effort (atomic rename; a read-only filesystem just
//!    re-measures next process).
//!
//! Measured parameters are clamped to a sane regime (a noisy container
//! can stretch a timing, not invert the model's shape) and quantized, so
//! a cached model is bit-stable across loads.

use crate::blocked::SearchMemory;
use crate::kernel::{self, Backend};
use crate::{BitVector, QueryBatch};
use std::fmt;
use std::hint::black_box;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

/// Cache-format version; bump when the measurement or clamps change.
const CACHE_VERSION: u32 = 1;

/// The calibrated parameters of the cascade tuner's cost model, in
/// stage-0 row-word units (one unit = the tiled SIMD sweep scoring one
/// packed word of one row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Relative per-word cost of the per-row pruning continuation vs.
    /// the tiled stage-0 sweep (shortlist indirection, no register
    /// tiling). Clamped to `[1.25, 8.0]`.
    pub cont_weight: f64,
    /// Fixed per-row continuation overhead (candidate bookkeeping).
    /// Clamped to `[0.0, 16.0]`.
    pub row_overhead_words: f64,
    /// Fixed per-query, per-stage overhead (pruning pass, lazy suffix
    /// popcounts). Clamped to `[2.0, 64.0]`.
    pub stage_overhead_words: f64,
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cont={},row={},stage={}",
            self.cont_weight, self.row_overhead_words, self.stage_overhead_words
        )
    }
}

impl CostModel {
    /// The compiled-in fallback: the historical hand-tuned constants,
    /// used whenever measurement is unavailable or pinned off
    /// (scalar-forced runs, `HD_LINALG_CALIBRATION=fallback`, timing
    /// failures). Deterministic by construction.
    pub const fn fallback() -> Self {
        CostModel { cont_weight: 4.0, row_overhead_words: 2.0, stage_overhead_words: 8.0 }
    }

    /// The process-wide cost model, resolved once (see the module docs
    /// for the resolution order) and identical on every later call.
    pub fn active() -> Self {
        static ACTIVE: OnceLock<CostModel> = OnceLock::new();
        *ACTIVE.get_or_init(Self::resolve)
    }

    fn resolve() -> Self {
        match std::env::var("HD_LINALG_CALIBRATION") {
            Ok(raw) if !raw.is_empty() => {
                let v = raw.trim().to_ascii_lowercase();
                return match v.as_str() {
                    "fallback" | "off" => Self::fallback(),
                    "measure" => Self::measure_and_store(),
                    _ => Self::parse(&raw).unwrap_or_else(|| {
                        eprintln!(
                            "hd_linalg: unrecognized HD_LINALG_CALIBRATION={raw:?} \
                             (expected fallback|measure|cont=..,row=..,stage=..); \
                             using the fallback constants"
                        );
                        Self::fallback()
                    }),
                };
            }
            _ => {}
        }
        let backend = kernel::active();
        if backend == Backend::Scalar {
            // Scalar sweep and scalar continuation are the same portable
            // loop — there is nothing host-specific to measure, and the
            // scalar-forced CI legs must stay reproducible.
            return Self::fallback();
        }
        if let Some(cached) = cache_path(backend).and_then(|p| Self::load(&p, backend)) {
            return cached;
        }
        Self::measure_and_store()
    }

    fn measure_and_store() -> Self {
        let backend = kernel::active();
        Self::measured_with_cache(backend, cache_path(backend).as_deref())
    }

    /// Measures a fresh model and best-effort persists it to `cache`.
    /// A missing or unwritable cache location (unset `$HOME`, read-only
    /// filesystem, a file blocking the directory path) degrades to
    /// measure-without-store: the returned model is always the fresh
    /// measurement — never an error, never a silently stale constant.
    fn measured_with_cache(backend: Backend, cache: Option<&Path>) -> Self {
        let model = Self::measure(backend);
        if let Some(path) = cache {
            let _ = model.store(path, backend); // best-effort persistence
        }
        model
    }

    /// Parses an explicit `cont=4.0,row=2.0,stage=8.0` override (any
    /// order, all three keys required). Values are clamped like measured
    /// ones. Returns `None` on anything malformed.
    pub fn parse(text: &str) -> Option<Self> {
        let (mut cont, mut row, mut stage) = (None, None, None);
        for field in text.split(',') {
            let (key, value) = field.split_once('=')?;
            let value: f64 = value.trim().parse().ok()?;
            if !value.is_finite() || value < 0.0 {
                return None;
            }
            match key.trim() {
                "cont" => cont = Some(value),
                "row" => row = Some(value),
                "stage" => stage = Some(value),
                _ => return None,
            }
        }
        Some(
            CostModel {
                cont_weight: cont?,
                row_overhead_words: row?,
                stage_overhead_words: stage?,
            }
            .clamped(),
        )
    }

    /// Clamps every parameter into the regime the tuner's model shape is
    /// valid for, then quantizes to 1/1024 units so a stored model
    /// round-trips bit-identically through the decimal cache format.
    pub fn clamped(self) -> Self {
        let q = |x: f64| (x * 1024.0).round() / 1024.0;
        CostModel {
            cont_weight: q(self.cont_weight.clamp(1.25, 8.0)),
            row_overhead_words: q(self.row_overhead_words.clamp(0.0, 16.0)),
            stage_overhead_words: q(self.stage_overhead_words.clamp(2.0, 64.0)),
        }
    }

    /// Measures the model for `backend` on a synthetic workload: a
    /// deterministic 256-row × 4096-bit memory swept by 32 queries
    /// (stage-0 unit price), `multi_dot_words` continuations at two
    /// segment widths (per-word weight and per-row intercept), and the
    /// per-(query, stage) pruning bookkeeping (lazy suffix popcounts +
    /// shortlist rescan). Timing noise is bounded by best-of-reps and
    /// the clamps; a degenerate measurement (zero or non-finite unit
    /// price) returns [`CostModel::fallback`].
    pub fn measure(backend: Backend) -> Self {
        const ROWS: usize = 256;
        const WORDS: usize = 64;
        const DIM: usize = WORDS * 64;
        const QUERIES: usize = 32;
        const SHORTLIST: usize = 8;
        const REPS: usize = 5;

        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            // splitmix64: deterministic filler, no crate dependencies.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut packed = |words: usize| -> Vec<u64> { (0..words).map(|_| next()).collect() };
        let rows: Vec<BitVector> = (0..ROWS)
            .map(|_| BitVector::from_words(DIM, packed(WORDS)).expect("whole words"))
            .collect();
        let memory = SearchMemory::from_rows(&rows).expect("non-empty synthetic memory");
        let queries: Vec<BitVector> = (0..QUERIES)
            .map(|_| BitVector::from_words(DIM, packed(WORDS)).expect("whole words"))
            .collect();
        let batch = QueryBatch::from_vectors(&queries).expect("non-empty synthetic batch");

        // Stage-0 unit price: the real fused winners sweep (blocked
        // layout, query tiling) through the explicit-backend hook. On a
        // scalar host no blocked mirror exists; the row-major sweep is
        // the stage-0 kernel there.
        let sweep_ns = min_time(REPS, || {
            let winners = match memory.blocked() {
                Some(blocked) => {
                    blocked.winners_batch_with(&batch, backend).expect("validated shapes")
                }
                None => memory.winners_batch(&batch).expect("validated shapes"),
            };
            black_box(winners);
        });
        let t0 = sweep_ns / (QUERIES * ROWS * WORDS) as f64;

        // Continuation price at two widths: per-row cost is
        // `intercept + width × slope`, so two measurements solve both.
        let row_words: Vec<&[u64]> = rows.iter().take(SHORTLIST).map(|r| r.as_words()).collect();
        let mut out = [0u32; SHORTLIST];
        let mut cont_per_row = |width: usize| -> f64 {
            const ITERS: usize = 8;
            let ns = min_time(REPS, || {
                for _ in 0..ITERS {
                    for q in 0..QUERIES {
                        let qs = &batch.query_words(q)[..width];
                        let rows_w: Vec<&[u64]> = row_words.iter().map(|r| &r[..width]).collect();
                        kernel::multi_dot_words_with(backend, qs, &rows_w, &mut out);
                        black_box(&out);
                    }
                }
            });
            ns / (ITERS * QUERIES * SHORTLIST) as f64
        };
        let (w_short, w_long) = (8usize, 32usize);
        let per_row_short = cont_per_row(w_short);
        let per_row_long = cont_per_row(w_long);
        let t1 = (per_row_long - per_row_short) / (w_long - w_short) as f64;
        let row_fix = per_row_short - w_short as f64 * t1;

        // Per-(query, stage) bookkeeping: the lazy query-suffix popcount
        // plus one shortlist rescan against the pruning bound.
        let stage_ns = {
            const ITERS: usize = 8;
            let partials: Vec<u32> = (0..SHORTLIST as u32 * 2).collect();
            let ns = min_time(REPS, || {
                for _ in 0..ITERS {
                    for q in 0..QUERIES {
                        let suffix: u32 =
                            batch.query_words(q)[WORDS / 2..].iter().map(|w| w.count_ones()).sum();
                        let bound = black_box(suffix);
                        let survivors = partials.iter().filter(|&&p| p + suffix >= bound).count();
                        black_box(survivors);
                    }
                }
            });
            ns / (ITERS * QUERIES) as f64
        };

        if !(t0.is_finite() && t0 > 0.0 && t1.is_finite() && row_fix.is_finite()) {
            return Self::fallback();
        }
        CostModel {
            cont_weight: t1 / t0,
            row_overhead_words: (row_fix / t0).max(0.0),
            stage_overhead_words: stage_ns / t0,
        }
        .clamped()
    }

    /// Loads a cached model from `path`, returning `None` when the file
    /// is missing, malformed, from another cache version, or was
    /// measured for a different kernel backend.
    pub fn load(path: &Path, backend: Backend) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let (mut version, mut found_backend) = (None, None);
        let (mut cont, mut row, mut stage) = (None, None, None);
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=')?;
            match key.trim() {
                "version" => version = value.trim().parse::<u32>().ok(),
                "backend" => found_backend = Some(value.trim().to_string()),
                "cont_weight" => cont = value.trim().parse::<f64>().ok(),
                "row_overhead_words" => row = value.trim().parse::<f64>().ok(),
                "stage_overhead_words" => stage = value.trim().parse::<f64>().ok(),
                _ => return None,
            }
        }
        if version? != CACHE_VERSION || found_backend? != backend.name() {
            return None;
        }
        let model = CostModel {
            cont_weight: cont?,
            row_overhead_words: row?,
            stage_overhead_words: stage?,
        };
        // Reject values outside the clamp regime instead of silently
        // re-clamping: an out-of-range file is corrupt, not calibrated.
        (model == model.clamped()).then_some(model)
    }

    /// Persists the model to `path` (parent directories created, written
    /// via a temp file + atomic rename so concurrent readers never see a
    /// partial cache).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers treat persistence as
    /// best-effort.
    pub fn store(&self, path: &Path, backend: Backend) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "# hd-linalg cascade cost-model calibration (auto-generated)")?;
            writeln!(f, "version={CACHE_VERSION}")?;
            writeln!(f, "backend={}", backend.name())?;
            writeln!(f, "cont_weight={}", self.cont_weight)?;
            writeln!(f, "row_overhead_words={}", self.row_overhead_words)?;
            writeln!(f, "stage_overhead_words={}", self.stage_overhead_words)?;
        }
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }
}

/// The per-host cache file for `backend`'s calibration:
/// `HD_LINALG_CALIBRATION_CACHE` verbatim when set, else
/// `<cache-base>/hd-linalg/cascade-cost-v1-<backend>.txt` where the base
/// is `$XDG_CACHE_HOME`, `$HOME/.cache`, or the system temp dir.
pub fn cache_path(backend: Backend) -> Option<PathBuf> {
    cache_path_from(
        std::env::var_os("HD_LINALG_CALIBRATION_CACHE").as_deref(),
        std::env::var_os("XDG_CACHE_HOME").as_deref(),
        std::env::var_os("HOME").as_deref(),
        backend,
    )
}

/// Pure resolution behind [`cache_path`], split out so the unset/empty
/// `$HOME` degradation is unit-testable without racing the process
/// environment. An unset or empty home never errors: the base falls
/// through to the system temp dir.
fn cache_path_from(
    explicit: Option<&std::ffi::OsStr>,
    xdg: Option<&std::ffi::OsStr>,
    home: Option<&std::ffi::OsStr>,
    backend: Backend,
) -> Option<PathBuf> {
    if let Some(p) = explicit.filter(|p| !p.is_empty()) {
        return Some(PathBuf::from(p));
    }
    let base = xdg
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
        .or_else(|| home.filter(|h| !h.is_empty()).map(|h| PathBuf::from(h).join(".cache")))
        .unwrap_or_else(std::env::temp_dir);
    Some(
        base.join("hd-linalg")
            .join(format!("cascade-cost-v{CACHE_VERSION}-{}.txt", backend.name())),
    )
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn min_time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e9);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_matches_historical_hand_tuned_constants() {
        let f = CostModel::fallback();
        assert_eq!((f.cont_weight, f.row_overhead_words, f.stage_overhead_words), (4.0, 2.0, 8.0));
        // The fallback itself sits inside the clamp regime.
        assert_eq!(f, f.clamped());
    }

    #[test]
    fn parse_accepts_triples_and_rejects_garbage() {
        let m = CostModel::parse("cont=3.5,row=1.0,stage=10").unwrap();
        assert_eq!((m.cont_weight, m.row_overhead_words, m.stage_overhead_words), (3.5, 1.0, 10.0));
        // Order-insensitive, whitespace-tolerant, clamped.
        let m = CostModel::parse("stage=1, cont = 100 ,row=0").unwrap();
        assert_eq!((m.cont_weight, m.row_overhead_words, m.stage_overhead_words), (8.0, 0.0, 2.0));
        for bad in [
            "",
            "cont=1",
            "cont=1,row=2",
            "cont=a,row=2,stage=3",
            "x=1,row=2,stage=3",
            "cont=-1,row=2,stage=3",
            "cont=inf,row=2,stage=3",
        ] {
            assert!(CostModel::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn measure_stays_inside_the_clamp_regime() {
        let m = CostModel::measure(kernel::active());
        assert_eq!(m, m.clamped(), "measured model must be clamped+quantized: {m}");
        assert!((1.25..=8.0).contains(&m.cont_weight), "{m}");
        assert!((0.0..=16.0).contains(&m.row_overhead_words), "{m}");
        assert!((2.0..=64.0).contains(&m.stage_overhead_words), "{m}");
    }

    #[test]
    fn cache_roundtrip_is_bit_identical_and_backend_keyed() {
        let dir = std::env::temp_dir().join(format!("hd-linalg-test-{}", std::process::id()));
        let path = dir.join("roundtrip.txt");
        let model = CostModel::parse("cont=2.625,row=1.5,stage=12.25").unwrap();
        let backend = kernel::active();
        model.store(&path, backend).unwrap();
        // Deterministic across repeat loads.
        assert_eq!(CostModel::load(&path, backend), Some(model));
        assert_eq!(CostModel::load(&path, backend), Some(model));
        // A different backend's cache never leaks across.
        for other in Backend::available() {
            if other != backend {
                assert_eq!(CostModel::load(&path, other), None);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_out_of_regime_and_malformed_files() {
        let dir = std::env::temp_dir().join(format!("hd-linalg-test-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let backend = kernel::active();
        let cases = [
            ("missing.txt", None),
            ("junk.txt", Some("not a cache file")),
            (
                "out-of-regime.txt",
                Some("version=1\nbackend=BACKEND\ncont_weight=99\nrow_overhead_words=1\nstage_overhead_words=8\n"),
            ),
            (
                "old-version.txt",
                Some("version=0\nbackend=BACKEND\ncont_weight=4\nrow_overhead_words=2\nstage_overhead_words=8\n"),
            ),
        ];
        for (name, contents) in cases {
            let path = dir.join(name);
            if let Some(c) = contents {
                std::fs::write(&path, c.replace("BACKEND", backend.name())).unwrap();
            }
            assert_eq!(CostModel::load(&path, backend), None, "{name}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn active_is_stable_across_calls() {
        assert_eq!(CostModel::active(), CostModel::active());
    }

    /// Forcing the cache-write failure path: a file where a directory is
    /// needed makes `store` fail the way a read-only `$HOME` does, and
    /// the resolution still hands back a fresh valid measurement — no
    /// error, nothing silently served from a stale location.
    #[test]
    fn unwritable_cache_degrades_to_measure_without_store() {
        let dir = std::env::temp_dir().join(format!("hd-linalg-test-ro-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "not a directory").unwrap();
        let path = blocker.join("sub").join("cache.txt");
        let backend = kernel::active();
        assert!(CostModel::fallback().store(&path, backend).is_err());
        let model = CostModel::measured_with_cache(backend, Some(&path));
        assert_eq!(
            model,
            model.clamped(),
            "degraded path must still return a valid model: {model}"
        );
        assert!((1.25..=8.0).contains(&model.cont_weight), "{model}");
        assert_eq!(CostModel::load(&path, backend), None, "nothing may have been stored");
        // No cache location at all (unset HOME on a tmpdir-less host):
        // same degradation, same valid model.
        let uncached = CostModel::measured_with_cache(backend, None);
        assert_eq!(uncached, uncached.clamped());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `cache_path_from` never errors on an unset or empty `$HOME`: the
    /// base degrades XDG → HOME/.cache → system temp dir.
    #[test]
    fn cache_base_resolution_handles_unset_and_empty_home() {
        use std::ffi::OsStr;
        let backend = kernel::active();
        let explicit = cache_path_from(Some(OsStr::new("/x/y.txt")), None, None, backend).unwrap();
        assert_eq!(explicit, PathBuf::from("/x/y.txt"));
        // An empty explicit override is ignored, not treated as a path.
        let xdg = cache_path_from(
            Some(OsStr::new("")),
            Some(OsStr::new("/xdg")),
            Some(OsStr::new("/home/u")),
            backend,
        )
        .unwrap();
        assert!(xdg.starts_with("/xdg/hd-linalg"), "{xdg:?}");
        let home = cache_path_from(None, None, Some(OsStr::new("/home/u")), backend).unwrap();
        assert!(home.starts_with("/home/u/.cache/hd-linalg"), "{home:?}");
        for unset_home in [None, Some(OsStr::new(""))] {
            let p = cache_path_from(None, None, unset_home, backend).unwrap();
            assert!(p.starts_with(std::env::temp_dir()), "{p:?}");
        }
    }

    /// The compile-time scalar kill switch pins the deterministic
    /// fallback — the scalar-forced CI leg exercises exactly this path.
    #[cfg(feature = "force-scalar")]
    #[test]
    fn force_scalar_resolves_to_fallback() {
        assert_eq!(CostModel::active(), CostModel::fallback());
    }
}
