//! Free functions on `f32` slices.
//!
//! These are the scalar kernels shared by [`crate::Matrix`] and the HDC
//! layers: dot products, AXPY updates, norms, and simple statistics.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch ({} vs {})", a.len(), b.len());
    // Chunked accumulation: lets the compiler vectorize and keeps float
    // error growth similar across platforms.
    let mut acc = 0.0f32;
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        let mut partial = 0.0f32;
        for i in 0..8 {
            partial += ca[i] * cb[i];
        }
        acc += partial;
    }
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += x * y;
    }
    acc
}

/// In-place AXPY: `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch ({} vs {})", x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Scales a slice in place by `factor`.
#[inline]
pub fn scale_in_place(a: &mut [f32], factor: f32) {
    for v in a {
        *v *= factor;
    }
}

/// Normalizes a slice to unit L2 norm in place.
///
/// A zero vector is left unchanged (there is no direction to normalize to).
pub fn normalize_l2(a: &mut [f32]) {
    let n = l2_norm(a);
    if n > 0.0 {
        scale_in_place(a, 1.0 / n);
    }
}

/// Arithmetic mean. Returns `0.0` for an empty slice.
#[inline]
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().sum::<f32>() / a.len() as f32
}

/// Population variance. Returns `0.0` for an empty slice.
pub fn variance(a: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / a.len() as f32
}

/// Index of the maximum element, breaking ties toward the lower index.
///
/// Returns `None` for an empty slice. NaN entries never win.
pub fn argmax(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (36 - i) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-2);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0f32, 2.0];
        axpy(3.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![4.0, -1.0]);
    }

    #[test]
    fn l2_norm_pythagorean() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_l2_unit() {
        let mut v = vec![3.0f32, 4.0];
        normalize_l2(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut v = vec![0.0f32; 4];
        normalize_l2(&mut v);
        assert_eq!(v, vec![0.0; 4]);
    }

    #[test]
    fn mean_variance_known() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        assert!((mean(&a) - 2.5).abs() < 1e-6);
        assert!((variance(&a) - 1.25).abs() < 1e-6);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
    }

    #[test]
    fn argmax_empty_none() {
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f32::NAN, 1.0, 0.5]), Some(1));
    }

    #[test]
    fn scale_in_place_basic() {
        let mut v = vec![1.0f32, -2.0];
        scale_in_place(&mut v, -2.0);
        assert_eq!(v, vec![-2.0, 4.0]);
    }
}
