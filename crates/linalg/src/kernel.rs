//! Runtime-dispatched SIMD popcount backends.
//!
//! Every similarity in the workspace bottoms out in one of two word-level
//! primitives — `popcount(a AND b)` (dot) and `popcount(a XOR b)`
//! (Hamming) — plus the blocked sweeps over a [`BlockedBitMatrix`]. This
//! module selects, **once per process**, the fastest implementation the
//! host CPU offers and publishes it as a dispatch table
//! (`KernelTable`) that the batched entry points
//! ([`crate::BitMatrix::dot_batch`], [`crate::BitMatrix::winners_batch`],
//! [`crate::BitVector::dot_many`], …) route through:
//!
//! * [`Backend::Avx512`] — AVX-512 `VPOPCNTDQ`: one `vpopcntq` per eight
//!   packed words, with vectorized winner tracking.
//! * [`Backend::Avx2`] — nibble-LUT popcount (`pshufb` table lookups
//!   reduced with `psadbw`), with byte-level accumulation across word
//!   runs so the horizontal reduction amortizes.
//! * [`Backend::Neon`] — `vcnt` + widening pairwise adds on aarch64.
//! * [`Backend::Scalar`] — portable `u64::count_ones` loops; always
//!   available and the reference all other backends are tested against.
//!
//! Selection order is `HD_LINALG_BACKEND` (values `scalar`, `avx2`,
//! `avx512`, `neon`; unknown or unavailable values fall back to
//! auto-detection), then the `force-scalar` cargo feature, then
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!`. All
//! backends are bit-identical — ties, tail words, and padding included —
//! which the `simd_equivalence` proptest suite pins for every backend
//! reachable on the host.

use crate::blocked::BlockedBitMatrix;
use crate::QueryBatch;
use std::sync::OnceLock;

/// A popcount kernel implementation selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable `u64::count_ones` loops (always available).
    Scalar,
    /// AVX2 nibble-LUT popcount (x86-64).
    Avx2,
    /// AVX-512 with the `VPOPCNTDQ` extension (x86-64).
    Avx512,
    /// NEON `vcnt` popcount (aarch64).
    Neon,
}

impl Backend {
    /// Short stable name (accepted by the `HD_LINALG_BACKEND` env var).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }

    /// Parses a backend name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "avx2" => Some(Backend::Avx2),
            "avx512" | "avx512-vpopcntdq" => Some(Backend::Avx512),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    /// Whether this backend can run on the current host.
    pub fn is_available(&self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }

    /// All backends usable on this host, best first (always ends with
    /// [`Backend::Scalar`]). This is the set the equivalence test suites
    /// iterate over.
    pub fn available() -> Vec<Backend> {
        [Backend::Avx512, Backend::Avx2, Backend::Neon, Backend::Scalar]
            .into_iter()
            .filter(Backend::is_available)
            .collect()
    }

    /// The best backend the host supports (detection only; no env
    /// override).
    pub fn detect() -> Backend {
        if cfg!(feature = "force-scalar") {
            return Backend::Scalar;
        }
        Backend::available()[0]
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide active backend: `HD_LINALG_BACKEND` if set to a
/// recognized **and** available backend, else [`Backend::detect`].
/// Resolved once and cached for the lifetime of the process.
///
/// The `force-scalar` cargo feature is a true kill switch: it wins over
/// the environment, so a binary built with it never runs SIMD kernels no
/// matter what `HD_LINALG_BACKEND` says.
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if cfg!(feature = "force-scalar") {
            return Backend::Scalar;
        }
        match std::env::var("HD_LINALG_BACKEND") {
            Ok(name) => match Backend::from_name(&name) {
                Some(b) if b.is_available() => b,
                Some(b) => {
                    eprintln!(
                        "hd_linalg: HD_LINALG_BACKEND={b} requested but unavailable on this \
                         host; auto-detecting"
                    );
                    Backend::detect()
                }
                // Empty means "explicitly unset" (how CI clears a
                // job-level override); anything else is a typo worth
                // flagging once.
                None if name.is_empty() => Backend::detect(),
                None => {
                    eprintln!(
                        "hd_linalg: unrecognized HD_LINALG_BACKEND={name:?} (expected \
                         scalar|avx2|avx512|neon); auto-detecting"
                    );
                    Backend::detect()
                }
            },
            Err(_) => Backend::detect(),
        }
    })
}

/// Popcount dot product with an explicit backend — the testing/tuning
/// hook behind [`crate::BitVector::dot`].
///
/// # Panics
///
/// Panics if the backend is unavailable on this host or the slices have
/// different lengths.
pub fn dot_words_with(backend: Backend, a: &[u64], b: &[u64]) -> u32 {
    assert!(backend.is_available(), "backend {backend} not available on this host");
    assert_eq!(a.len(), b.len(), "dot_words: length mismatch");
    (table_for(backend).dot_words)(a, b)
}

/// Multi-row popcount dot with an explicit backend: adds row `i`'s dot
/// with `qs` into `out[i]`. The multi-row form is what the cascade
/// continuations run — one pass per shortlist instead of one kernel
/// call per row, so query loads and call overhead amortize across the
/// shortlist. Bit-identical to `rows.len()` separate
/// [`dot_words_with`] calls.
///
/// # Panics
///
/// Panics if the backend is unavailable on this host, `rows` and `out`
/// have different lengths, or any row's length differs from `qs`.
pub fn multi_dot_words_with(backend: Backend, qs: &[u64], rows: &[&[u64]], out: &mut [u32]) {
    assert!(backend.is_available(), "backend {backend} not available on this host");
    assert_eq!(rows.len(), out.len(), "multi_dot_words: rows/out length mismatch");
    for r in rows {
        assert_eq!(r.len(), qs.len(), "multi_dot_words: length mismatch");
    }
    (table_for(backend).multi_dot_words)(qs, rows, out)
}

/// Popcount XOR (Hamming) with an explicit backend.
///
/// # Panics
///
/// Panics if the backend is unavailable on this host or the slices have
/// different lengths.
pub fn hamming_words_with(backend: Backend, a: &[u64], b: &[u64]) -> u32 {
    assert!(backend.is_available(), "backend {backend} not available on this host");
    assert_eq!(a.len(), b.len(), "hamming_words: length mismatch");
    (table_for(backend).hamming_words)(a, b)
}

/// Dispatch table of one backend's kernel entry points. Built once per
/// backend; the active table is what every batched search routes through.
pub(crate) struct KernelTable {
    /// `popcount(a & b)` over equal-length word slices.
    pub(crate) dot_words: fn(&[u64], &[u64]) -> u32,
    /// Adds each row's `popcount(row & qs)` into the matching `out`
    /// slot — the cascade-shortlist form that amortizes query loads and
    /// call overhead across rows. Callers guarantee `rows.len() ==
    /// out.len()` and every row's length equals `qs.len()`.
    pub(crate) multi_dot_words: fn(&[u64], &[&[u64]], &mut [u32]),
    /// `popcount(a ^ b)` over equal-length word slices.
    pub(crate) hamming_words: fn(&[u64], &[u64]) -> u32,
    /// Scores `q_count` queries starting at `q_offset` against every row
    /// of the blocked memory, row-major into `out` (`q_count × rows`).
    pub(crate) blocked_dot_range: fn(&BlockedBitMatrix, &QueryBatch, usize, usize, &mut [u32]),
    /// Winning `(row, score)` per query (low-row tie-break), no score
    /// materialization.
    pub(crate) blocked_winners_range:
        fn(&BlockedBitMatrix, &QueryBatch, usize, &mut [(usize, u32)]),
    /// k-best `(row, score)` per query (score desc, row asc), `k` slots
    /// per query in `out`, no score materialization. `k` is pre-clamped
    /// to the row count by the caller.
    #[allow(clippy::type_complexity)]
    pub(crate) blocked_topk_range:
        fn(&BlockedBitMatrix, &QueryBatch, usize, usize, &mut [(usize, u32)]),
}

static SCALAR_TABLE: KernelTable = KernelTable {
    dot_words: scalar::dot_words,
    multi_dot_words: scalar::multi_dot_words,
    hamming_words: scalar::hamming_words,
    blocked_dot_range: crate::blocked::scalar_dot_range,
    blocked_winners_range: crate::blocked::scalar_winners_range,
    blocked_topk_range: crate::blocked::scalar_topk_range,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    dot_words: x86::dot_words_avx2,
    multi_dot_words: x86::multi_dot_words_avx2,
    hamming_words: x86::hamming_words_avx2,
    blocked_dot_range: crate::blocked::avx2_dot_range,
    blocked_winners_range: crate::blocked::avx2_winners_range,
    blocked_topk_range: crate::blocked::avx2_topk_range,
};

#[cfg(target_arch = "x86_64")]
static AVX512_TABLE: KernelTable = KernelTable {
    dot_words: x86::dot_words_avx512,
    multi_dot_words: x86::multi_dot_words_avx512,
    hamming_words: x86::hamming_words_avx512,
    blocked_dot_range: crate::blocked::avx512_dot_range,
    blocked_winners_range: crate::blocked::avx512_winners_range,
    blocked_topk_range: crate::blocked::avx512_topk_range,
};

#[cfg(target_arch = "aarch64")]
static NEON_TABLE: KernelTable = KernelTable {
    dot_words: aarch64::dot_words_neon,
    multi_dot_words: aarch64::multi_dot_words_neon,
    hamming_words: aarch64::hamming_words_neon,
    blocked_dot_range: crate::blocked::neon_dot_range,
    blocked_winners_range: crate::blocked::neon_winners_range,
    blocked_topk_range: crate::blocked::neon_topk_range,
};

/// The dispatch table of an explicit backend (assumed available).
pub(crate) fn table_for(backend: Backend) -> &'static KernelTable {
    match backend {
        Backend::Scalar => &SCALAR_TABLE,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => &AVX2_TABLE,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => &AVX512_TABLE,
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => &NEON_TABLE,
        #[allow(unreachable_patterns)]
        _ => &SCALAR_TABLE,
    }
}

/// The dispatch table of the active backend.
pub(crate) fn active_table() -> &'static KernelTable {
    static TABLE: OnceLock<&'static KernelTable> = OnceLock::new();
    TABLE.get_or_init(|| table_for(active()))
}

/// Portable reference kernels — the fallback backend and the oracle the
/// SIMD backends are verified against.
pub(crate) mod scalar {
    /// `Σ popcount(a_i & b_i)`.
    #[inline]
    pub(crate) fn dot_words(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
    }

    /// `Σ popcount(a_i ^ b_i)`.
    #[inline]
    pub(crate) fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }

    /// Adds each row's dot with `qs` into the matching `out` slot.
    pub(crate) fn multi_dot_words(qs: &[u64], rows: &[&[u64]], out: &mut [u32]) {
        debug_assert_eq!(rows.len(), out.len());
        for (row, slot) in rows.iter().zip(out) {
            *slot += dot_words(qs, row);
        }
    }
}

/// AVX2 / AVX-512 flat-slice kernels.
///
/// The wrappers are safe because the table they are published in is only
/// selected after `is_x86_feature_detected!` confirms the features.
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use std::arch::x86_64::*;

    pub(super) fn dot_words_avx2(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: published only behind an avx2 detection check; every
        // caller enforces a.len() == b.len() before the call.
        unsafe { combine_words_avx2::<false>(a, b) }
    }

    pub(super) fn hamming_words_avx2(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: published only behind an avx2 detection check; every
        // caller enforces a.len() == b.len() before the call.
        unsafe { combine_words_avx2::<true>(a, b) }
    }

    pub(super) fn dot_words_avx512(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: published only behind an avx512f+vpopcntdq check; every
        // caller enforces a.len() == b.len() before the call.
        unsafe { combine_words_avx512::<false>(a, b) }
    }

    pub(super) fn hamming_words_avx512(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: published only behind an avx512f+vpopcntdq check; every
        // caller enforces a.len() == b.len() before the call.
        unsafe { combine_words_avx512::<true>(a, b) }
    }

    /// Per-byte popcount of a 256-bit vector via the classic nibble LUT.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn popcnt_bytes_avx2(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
    }

    /// Sums the four 64-bit lanes of an accumulator of `psadbw` partials.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn hsum_epi64_avx2(v: __m256i) -> u64 {
        let hi = _mm256_extracti128_si256(v, 1);
        let lo = _mm256_castsi256_si128(v);
        let s = _mm_add_epi64(lo, hi);
        let s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
        _mm_cvtsi128_si64(s) as u64
    }

    /// `popcount(a OP b)` over word slices, OP = XOR when `XOR` else AND.
    /// Processes 4 words per vector with byte-level accumulation over runs
    /// of ≤ 31 vectors (max byte count 8·31 = 248 < 256) so the `psadbw`
    /// horizontal step runs once per run, not once per vector.
    #[target_feature(enable = "avx2")]
    unsafe fn combine_words_avx2<const XOR: bool>(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let run = ((n - i) / 4).min(31);
            let mut bytes = _mm256_setzero_si256();
            for r in 0..run {
                let pa = _mm256_loadu_si256(a.as_ptr().add(i + 4 * r) as *const __m256i);
                let pb = _mm256_loadu_si256(b.as_ptr().add(i + 4 * r) as *const __m256i);
                let v = if XOR { _mm256_xor_si256(pa, pb) } else { _mm256_and_si256(pa, pb) };
                bytes = _mm256_add_epi8(bytes, popcnt_bytes_avx2(v));
            }
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
            i += 4 * run;
        }
        let mut total = hsum_epi64_avx2(acc) as u32;
        while i < n {
            let v = if XOR { a[i] ^ b[i] } else { a[i] & b[i] };
            total += v.count_ones();
            i += 1;
        }
        total
    }

    /// Multi-row dot via per-row AVX2 sweeps: the nibble-LUT popcount
    /// dominates each row's cost, so sharing query loads buys little —
    /// the win over separate `dot_words` calls is the amortized dispatch.
    pub(super) fn multi_dot_words_avx2(qs: &[u64], rows: &[&[u64]], out: &mut [u32]) {
        debug_assert_eq!(rows.len(), out.len());
        for (row, slot) in rows.iter().zip(out) {
            *slot += dot_words_avx2(qs, row);
        }
    }

    /// Multi-row dot with shared query loads: rows are processed in
    /// register-width groups (up to 8 at a time, with a const-generic
    /// remainder pass), each 512-bit query load feeding one
    /// AND+VPOPCNTDQ accumulator per row — the cascade-shortlist shape
    /// where per-call overhead and query streaming would otherwise
    /// dominate. A top-5 shortlist is a single pass over the staged
    /// query segment.
    pub(super) fn multi_dot_words_avx512(qs: &[u64], rows: &[&[u64]], out: &mut [u32]) {
        assert_eq!(rows.len(), out.len(), "multi_dot_words: rows/out length mismatch");
        for r in rows {
            assert_eq!(r.len(), qs.len(), "multi_dot_words: length mismatch");
        }
        // SAFETY (all calls below): published only behind an
        // avx512f+vpopcntdq detection check; slice lengths are enforced
        // above and each group slice is in bounds by construction.
        unsafe {
            let mut r = 0usize;
            while rows.len() - r >= 8 {
                multi_group_avx512::<8>(qs, &rows[r..r + 8], &mut out[r..r + 8]);
                r += 8;
            }
            match rows.len() - r {
                0 => {}
                1 => multi_group_avx512::<1>(qs, &rows[r..], &mut out[r..]),
                2 => multi_group_avx512::<2>(qs, &rows[r..], &mut out[r..]),
                3 => multi_group_avx512::<3>(qs, &rows[r..], &mut out[r..]),
                4 => multi_group_avx512::<4>(qs, &rows[r..], &mut out[r..]),
                5 => multi_group_avx512::<5>(qs, &rows[r..], &mut out[r..]),
                6 => multi_group_avx512::<6>(qs, &rows[r..], &mut out[r..]),
                _ => multi_group_avx512::<7>(qs, &rows[r..], &mut out[r..]),
            }
        }
    }

    /// One group of `W` rows against the shared query segment: `W`
    /// accumulators (`W` ≤ 8 keeps them all in zmm registers alongside
    /// the query), one query load per 8 words.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn multi_group_avx512<const W: usize>(qs: &[u64], rows: &[&[u64]], out: &mut [u32]) {
        debug_assert_eq!(rows.len(), W);
        let n = qs.len();
        let mut ptrs = [std::ptr::null::<u64>(); W];
        for j in 0..W {
            ptrs[j] = rows[j].as_ptr();
        }
        let mut acc = [_mm512_setzero_si512(); W];
        let mut i = 0usize;
        while i + 8 <= n {
            let q = _mm512_loadu_si512(qs.as_ptr().add(i) as *const _);
            for j in 0..W {
                let w = _mm512_loadu_si512(ptrs[j].add(i) as *const _);
                acc[j] = _mm512_add_epi64(acc[j], _mm512_popcnt_epi64(_mm512_and_si512(q, w)));
            }
            i += 8;
        }
        let mut tot = [0u32; W];
        for j in 0..W {
            tot[j] = _mm512_reduce_add_epi64(acc[j]) as u32;
        }
        while i < n {
            let q = qs[i];
            for j in 0..W {
                tot[j] += (q & *ptrs[j].add(i)).count_ones();
            }
            i += 1;
        }
        for j in 0..W {
            out[j] += tot[j];
        }
    }

    /// `popcount(a OP b)` with native 64-bit lane popcounts (VPOPCNTDQ),
    /// 8 words per vector.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn combine_words_avx512<const XOR: bool>(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 8 <= n {
            let pa = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let pb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
            let v = if XOR { _mm512_xor_si512(pa, pb) } else { _mm512_and_si512(pa, pb) };
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u32;
        while i < n {
            let v = if XOR { a[i] ^ b[i] } else { a[i] & b[i] };
            total += v.count_ones();
            i += 1;
        }
        total
    }
}

/// NEON flat-slice kernels (aarch64; NEON is baseline there, but the
/// backend still goes through the same detection-gated table).
#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use std::arch::aarch64::*;

    pub(super) fn dot_words_neon(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: published only behind a neon detection check; every
        // caller enforces a.len() == b.len() before the call.
        unsafe { combine_words_neon::<false>(a, b) }
    }

    pub(super) fn hamming_words_neon(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: published only behind a neon detection check; every
        // caller enforces a.len() == b.len() before the call.
        unsafe { combine_words_neon::<true>(a, b) }
    }

    /// Multi-row dot via per-row NEON sweeps; the win over separate
    /// `dot_words` calls is the amortized dispatch.
    pub(super) fn multi_dot_words_neon(qs: &[u64], rows: &[&[u64]], out: &mut [u32]) {
        debug_assert_eq!(rows.len(), out.len());
        for (row, slot) in rows.iter().zip(out) {
            *slot += dot_words_neon(qs, row);
        }
    }

    /// `popcount(a OP b)` via `vcnt` with byte accumulation over runs of
    /// ≤ 31 vectors, widened once per run.
    #[target_feature(enable = "neon")]
    unsafe fn combine_words_neon<const XOR: bool>(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = vdupq_n_u64(0);
        let mut i = 0usize;
        while i + 2 <= n {
            let run = ((n - i) / 2).min(31);
            let mut bytes = vdupq_n_u8(0);
            for r in 0..run {
                let pa = vld1q_u64(a.as_ptr().add(i + 2 * r));
                let pb = vld1q_u64(b.as_ptr().add(i + 2 * r));
                let v = if XOR { veorq_u64(pa, pb) } else { vandq_u64(pa, pb) };
                bytes = vaddq_u8(bytes, vcntq_u8(vreinterpretq_u8_u64(v)));
            }
            acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes))));
            i += 2 * run;
        }
        let mut total = (vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1)) as u32;
        while i < n {
            let v = if XOR { a[i] ^ b[i] } else { a[i] & b[i] };
            total += v.count_ones();
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(Backend::Scalar.is_available());
        let avail = Backend::available();
        assert_eq!(*avail.last().unwrap(), Backend::Scalar);
        assert!(avail.contains(&active()));
    }

    /// The compile-time kill switch must win even against a hostile
    /// `HD_LINALG_BACKEND` (CI runs this feature with the env cleared,
    /// but the guarantee is unconditional).
    #[cfg(feature = "force-scalar")]
    #[test]
    fn force_scalar_beats_env() {
        assert_eq!(active(), Backend::Scalar);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Avx512, Backend::Neon] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("AVX512"), Some(Backend::Avx512));
        assert_eq!(Backend::from_name("mmx"), None);
    }

    #[test]
    fn flat_kernels_match_scalar_on_all_backends() {
        // Deterministic pseudo-random words, lengths spanning every tail
        // case of the vector loops.
        let words: Vec<u64> = (0..67u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left((i % 61) as u32))
            .collect();
        let other: Vec<u64> =
            words.iter().map(|w| w.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ !w).collect();
        for backend in Backend::available() {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 67] {
                let a = &words[..len];
                let b = &other[..len];
                assert_eq!(
                    dot_words_with(backend, a, b),
                    scalar::dot_words(a, b),
                    "{backend} dot len {len}"
                );
                assert_eq!(
                    hamming_words_with(backend, a, b),
                    scalar::hamming_words(a, b),
                    "{backend} hamming len {len}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_words_with_checks_lengths() {
        dot_words_with(Backend::Scalar, &[0], &[0, 0]);
    }
}
