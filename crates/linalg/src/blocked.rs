//! Cache-conscious interleaved associative-memory storage.
//!
//! The row-major [`BitMatrix`] stores one class vector per packed row —
//! natural for construction and mutation, but a SIMD sweep wants the
//! *transposed-within-tile* view: for one query word, the corresponding
//! word of **eight consecutive rows** side by side, so a single vector
//! load feeds eight popcount lanes. [`BlockedBitMatrix`] is that layout:
//! class rows are tiled into blocks of [`LANES`] rows, and each block
//! stores its rows' words column-panel-major — panel `(b, w)` holds word
//! `w` of rows `b·LANES .. b·LANES+LANES` contiguously (512 bits, one
//! AVX-512 register, two AVX2 registers, four NEON registers). Rows are
//! padded to the lane count with all-zero rows, which can never win a
//! search (scores are non-negative and ties break toward lower, real,
//! rows).
//!
//! A batched sweep over this layout streams the memory exactly once per
//! query in perfectly sequential panel order, and every loaded panel
//! feeds [`LANES`] independent accumulator lanes. The per-backend kernels
//! here are published through the [`crate::kernel`] dispatch table; all
//! of them are bit-identical to the scalar row-major path (the
//! `simd_equivalence` suite pins this for every reachable backend).

use crate::batch::{topk_insert, MemoryRef, ScoreMatrix, SearchResults, TopK};
use crate::bits::{BitMatrix, BitVector};
use crate::error::{LinalgError, Result};
use crate::kernel::{self, Backend};
use crate::QueryBatch;

/// Rows per interleaved block — one 512-bit panel of `u64` lanes.
pub const LANES: usize = 8;

/// A [`BitMatrix`] re-packed into interleaved row blocks for SIMD sweeps.
///
/// Construction packs once ([`BlockedBitMatrix::from_matrix`]); searches
/// then run the active [`crate::kernel`] backend. The layout is purely an
/// execution detail: [`BlockedBitMatrix::to_matrix`] recovers the
/// original matrix bit-for-bit.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitMatrix, BitVector, BlockedBitMatrix, QueryBatch};
///
/// let rows = vec![
///     BitVector::from_bools(&[true, false, true]),
///     BitVector::from_bools(&[false, true, true]),
/// ];
/// let m = BitMatrix::from_rows(&rows).unwrap();
/// let blocked = BlockedBitMatrix::from_matrix(&m);
/// let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&[true, true, true])]).unwrap();
/// let scores = blocked.dot_batch(&batch).unwrap();
/// assert_eq!(scores.scores(0), &[2, 2]);
/// assert_eq!(blocked.to_matrix(), m);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedBitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    row_blocks: usize,
    /// Panel-major storage: `data[(b * words_per_row + w) * LANES + l]`
    /// is word `w` of row `b * LANES + l` (zero for padding rows).
    data: Vec<u64>,
}

impl BlockedBitMatrix {
    /// Packs a row-major matrix into interleaved blocks.
    pub fn from_matrix(m: &BitMatrix) -> Self {
        let rows = m.rows();
        let wpr = m.words_per_row_pub();
        let row_blocks = rows.div_ceil(LANES);
        let mut data = vec![0u64; row_blocks * wpr * LANES];
        for r in 0..rows {
            let (b, l) = (r / LANES, r % LANES);
            let words = m.row_words_pub(r);
            for (w, &word) in words.iter().enumerate() {
                data[(b * wpr + w) * LANES + l] = word;
            }
        }
        BlockedBitMatrix { rows, cols: m.cols(), words_per_row: wpr, row_blocks, data }
    }

    /// Packs equal-length rows directly (convenience over
    /// [`BitMatrix::from_rows`] + [`BlockedBitMatrix::from_matrix`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row set and
    /// [`LinalgError::RaggedRows`] if rows disagree on length.
    pub fn from_rows(rows: &[BitVector]) -> Result<Self> {
        Ok(Self::from_matrix(&BitMatrix::from_rows(rows)?))
    }

    /// Number of stored (real, unpadded) rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of [`LANES`]-row blocks (the last may be partially padded).
    #[inline]
    pub fn row_blocks(&self) -> usize {
        self.row_blocks
    }

    /// Packed words per row.
    #[inline]
    pub(crate) fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The interleaved panel buffer.
    #[inline]
    pub(crate) fn data(&self) -> &[u64] {
        &self.data
    }

    /// Panel `(b, w)`: word `w` of the block's [`LANES`] rows.
    #[inline]
    pub(crate) fn panel(&self, b: usize, w: usize) -> &[u64] {
        let start = (b * self.words_per_row + w) * LANES;
        &self.data[start..start + LANES]
    }

    /// Unpacks row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> BitVector {
        assert!(r < self.rows, "row index {r} out of bounds");
        let (b, l) = (r / LANES, r % LANES);
        let words: Vec<u64> = (0..self.words_per_row)
            .map(|w| self.data[(b * self.words_per_row + w) * LANES + l])
            .collect();
        BitVector::from_words(self.cols, words).expect("packed rows have clean tails")
    }

    /// Unpacks the whole matrix back to row-major form (the exact inverse
    /// of [`BlockedBitMatrix::from_matrix`]).
    pub fn to_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            m.set_row(r, &self.row(r)).expect("row width matches");
        }
        m
    }

    /// Copies rows `[start, start + count)` into a new blocked matrix
    /// without round-tripping through the row-major layout.
    ///
    /// `start` must be block-aligned (`start % LANES == 0`): a block is
    /// the smallest unit the interleaved storage can slice contiguously,
    /// and shard planners align on it anyway. The copied region is one
    /// contiguous `memcpy` of whole panels; a `count` that is not a
    /// multiple of [`LANES`] simply leaves the final block partially
    /// padded, exactly as construction would.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `count == 0`,
    /// [`LinalgError::IndexOutOfBounds`] when the range overruns `rows()`,
    /// and [`LinalgError::ShapeMismatch`] when `start` is not
    /// block-aligned.
    pub fn row_range(&self, start: usize, count: usize) -> Result<Self> {
        if count == 0 {
            return Err(LinalgError::Empty { op: "BlockedBitMatrix::row_range" });
        }
        let end = start.checked_add(count).filter(|&e| e <= self.rows).ok_or_else(|| {
            LinalgError::IndexOutOfBounds {
                index: start.saturating_add(count) - 1,
                bound: self.rows,
            }
        })?;
        if !start.is_multiple_of(LANES) {
            return Err(LinalgError::ShapeMismatch {
                op: "BlockedBitMatrix::row_range",
                expected: LANES,
                found: start % LANES,
            });
        }
        let first_block = start / LANES;
        let row_blocks = count.div_ceil(LANES);
        let panel_words = self.words_per_row * LANES;
        let mut data =
            self.data[first_block * panel_words..end.div_ceil(LANES) * panel_words].to_vec();
        // A shard boundary can cut through the source's final copied
        // block; zero the lanes past `count` so padding rows stay all-zero
        // (the invariant every sweep kernel relies on for tie-breaks).
        if !count.is_multiple_of(LANES) {
            let keep = count % LANES;
            let last = row_blocks - 1;
            for w in 0..self.words_per_row {
                let base = (last * self.words_per_row + w) * LANES;
                for lane in keep..LANES {
                    data[base + lane] = 0;
                }
            }
        }
        Ok(BlockedBitMatrix {
            rows: count,
            cols: self.cols,
            words_per_row: self.words_per_row,
            row_blocks,
            data,
        })
    }

    fn check_dim(&self, batch: &QueryBatch, op: &'static str) -> Result<()> {
        if batch.dim() != self.cols {
            return Err(LinalgError::ShapeMismatch { op, expected: self.cols, found: batch.dim() });
        }
        Ok(())
    }

    /// Batched dot-similarity sweep on the active backend (the blocked
    /// analogue of [`BitMatrix::dot_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn dot_batch(&self, batch: &QueryBatch) -> Result<ScoreMatrix> {
        let mut out = ScoreMatrix::zeros(batch.len(), self.rows);
        self.dot_batch_into(batch, &mut out)?;
        Ok(out)
    }

    /// Like [`BlockedBitMatrix::dot_batch`] but reuses `out` as scratch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn dot_batch_into(&self, batch: &QueryBatch, out: &mut ScoreMatrix) -> Result<()> {
        self.check_dim(batch, "dot_batch")?;
        out.reset(batch.len(), self.rows);
        crate::batch::dot_batch_dispatch(MemoryRef::Blocked(self), batch, out);
        Ok(())
    }

    /// Batched associative search with the full score matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn search_batch(&self, batch: &QueryBatch) -> Result<SearchResults> {
        Ok(SearchResults::from_scores(self.dot_batch(batch)?))
    }

    /// Winners-only batched search (low-row tie-break), never
    /// materializing scores.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn winners_batch(&self, batch: &QueryBatch) -> Result<Vec<(usize, u32)>> {
        self.check_dim(batch, "winners_batch")?;
        let mut winners = vec![(0usize, 0u32); batch.len()];
        crate::batch::winners_dispatch(MemoryRef::Blocked(self), batch, &mut winners);
        Ok(winners)
    }

    /// [`BlockedBitMatrix::dot_batch`] on an explicit backend — the
    /// equivalence-testing hook (serial; no thread chunking).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a dimensionality
    /// mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable on this host.
    pub fn dot_batch_with(&self, batch: &QueryBatch, backend: Backend) -> Result<ScoreMatrix> {
        assert!(backend.is_available(), "backend {backend} not available on this host");
        self.check_dim(batch, "dot_batch")?;
        let mut out = ScoreMatrix::zeros(batch.len(), self.rows);
        (kernel::table_for(backend).blocked_dot_range)(self, batch, 0, batch.len(), out.data_mut());
        Ok(out)
    }

    /// [`BlockedBitMatrix::winners_batch`] on an explicit backend — the
    /// equivalence-testing hook (serial; no thread chunking).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a dimensionality
    /// mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable on this host.
    pub fn winners_batch_with(
        &self,
        batch: &QueryBatch,
        backend: Backend,
    ) -> Result<Vec<(usize, u32)>> {
        assert!(backend.is_available(), "backend {backend} not available on this host");
        self.check_dim(batch, "winners_batch")?;
        let mut winners = vec![(0usize, 0u32); batch.len()];
        (kernel::table_for(backend).blocked_winners_range)(self, batch, 0, &mut winners);
        Ok(winners)
    }

    /// Fused top-k batched search on the active backend (the blocked
    /// analogue of [`BitMatrix::topk_batch`]): per-query bounded k-best
    /// lists carried through the 8-row panel sweep, never materializing
    /// scores.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for `k == 0` and
    /// [`LinalgError::ShapeMismatch`] on a dimensionality mismatch.
    pub fn topk_batch(&self, batch: &QueryBatch, k: usize) -> Result<TopK> {
        if k == 0 || self.rows == 0 {
            return Err(LinalgError::Empty { op: "topk_batch" });
        }
        self.check_dim(batch, "topk_batch")?;
        let per_query = k.min(self.rows);
        let mut entries = vec![(0usize, 0u32); batch.len() * per_query];
        crate::batch::topk_dispatch(MemoryRef::Blocked(self), batch, per_query, &mut entries);
        Ok(TopK::from_flat(batch.len(), k, per_query, entries))
    }

    /// [`BlockedBitMatrix::topk_batch`] on an explicit backend — the
    /// equivalence-testing hook (serial; no thread chunking).
    ///
    /// # Errors
    ///
    /// As [`BlockedBitMatrix::topk_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable on this host.
    pub fn topk_batch_with(&self, batch: &QueryBatch, k: usize, backend: Backend) -> Result<TopK> {
        assert!(backend.is_available(), "backend {backend} not available on this host");
        if k == 0 || self.rows == 0 {
            return Err(LinalgError::Empty { op: "topk_batch" });
        }
        self.check_dim(batch, "topk_batch")?;
        let per_query = k.min(self.rows);
        let mut entries = vec![(0usize, 0u32); batch.len() * per_query];
        (kernel::table_for(backend).blocked_topk_range)(self, batch, 0, per_query, &mut entries);
        Ok(TopK::from_flat(batch.len(), k, per_query, entries))
    }
}

/// A search-optimized associative memory: the row-major matrix plus, when
/// the active backend is SIMD, its interleaved blocked mirror built once
/// at construction.
///
/// This is the type long-lived memories (class AMs, per-partition IMC
/// matrices) should hold: batched searches skip the per-call packing that
/// [`BitMatrix::dot_batch`] would otherwise perform, and on the scalar
/// backend it stays a plain [`BitMatrix`] with zero overhead. Cascade
/// searches additionally cache their derived bound forms (prefix
/// sub-memory, row-suffix table) here, keyed by plan — see
/// [`SearchMemory::search_cascade`]. Equality compares the logical
/// matrix only, and a clone starts with an empty cascade cache (forms
/// re-derive lazily).
#[derive(Debug)]
pub struct SearchMemory {
    matrix: BitMatrix,
    blocked: Option<BlockedBitMatrix>,
    /// Derived cascade bound forms, keyed by plan; invalidated on any
    /// mutation of `matrix`.
    cascade_cache: crate::cascade::CascadeCache,
}

impl Clone for SearchMemory {
    fn clone(&self) -> Self {
        SearchMemory {
            matrix: self.matrix.clone(),
            blocked: self.blocked.clone(),
            cascade_cache: crate::cascade::CascadeCache::new(),
        }
    }
}

impl PartialEq for SearchMemory {
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix
    }
}

impl Eq for SearchMemory {}

impl From<BitMatrix> for SearchMemory {
    fn from(matrix: BitMatrix) -> Self {
        SearchMemory::new(matrix)
    }
}

impl SearchMemory {
    /// Wraps a matrix, building the blocked mirror iff the active backend
    /// is a SIMD one.
    pub fn new(matrix: BitMatrix) -> Self {
        let blocked = (kernel::active() != Backend::Scalar && matrix.rows() > 0)
            .then(|| BlockedBitMatrix::from_matrix(&matrix));
        SearchMemory { matrix, blocked, cascade_cache: crate::cascade::CascadeCache::new() }
    }

    /// The memory's cascade bound-form cache.
    #[inline]
    pub(crate) fn cascade_cache(&self) -> &crate::cascade::CascadeCache {
        &self.cascade_cache
    }

    /// Builds from equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] / [`LinalgError::RaggedRows`] as
    /// [`BitMatrix::from_rows`] does.
    pub fn from_rows(rows: &[BitVector]) -> Result<Self> {
        Ok(SearchMemory::new(BitMatrix::from_rows(rows)?))
    }

    /// The row-major matrix.
    #[inline]
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Consumes the wrapper, yielding the row-major matrix.
    pub fn into_matrix(self) -> BitMatrix {
        self.matrix
    }

    /// The blocked mirror, when one was built (SIMD backends only).
    #[inline]
    pub fn blocked(&self) -> Option<&BlockedBitMatrix> {
        self.blocked.as_ref()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of columns (bits per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.matrix.cols()
    }

    /// Mutates the underlying matrix and unconditionally rebuilds the
    /// blocked mirror. Prefer [`SearchMemory::modify_reporting`] when the
    /// closure can tell whether it changed anything.
    pub fn modify<R>(&mut self, f: impl FnOnce(&mut BitMatrix) -> R) -> R {
        let mut out = None;
        self.modify_reporting(|matrix| {
            out = Some(f(matrix));
            true
        });
        out.expect("modify closure always runs")
    }

    /// Like [`SearchMemory::modify`], but the closure reports whether it
    /// actually mutated the matrix and the blocked mirror is rebuilt only
    /// then — so sweeps that touch every cell but flip none (e.g. a
    /// zero-probability fault pass) stay free. A reported mutation also
    /// drops every cached cascade bound form: the prefix sub-memory and
    /// row-suffix tables describe the old bits, and the next
    /// [`SearchMemory::search_cascade`] re-derives them. Returns the
    /// closure's report.
    pub fn modify_reporting(&mut self, f: impl FnOnce(&mut BitMatrix) -> bool) -> bool {
        let changed = f(&mut self.matrix);
        if changed {
            if self.blocked.is_some() {
                self.blocked = Some(BlockedBitMatrix::from_matrix(&self.matrix));
            }
            self.cascade_cache.invalidate();
        }
        changed
    }

    /// Copies rows `[start, start + count)` into a standalone
    /// [`SearchMemory`]. When a blocked mirror exists and `start` is
    /// block-aligned, the mirror is sliced directly (contiguous panel
    /// copy) instead of being re-packed.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `count == 0` and
    /// [`LinalgError::IndexOutOfBounds`] when the range overruns `rows()`.
    pub fn row_range(&self, start: usize, count: usize) -> Result<SearchMemory> {
        let matrix = self.matrix.row_range(start, count)?;
        let blocked = match &self.blocked {
            Some(b) if start.is_multiple_of(LANES) => {
                Some(b.row_range(start, count).expect("range validated by row-major slice"))
            }
            Some(_) => Some(BlockedBitMatrix::from_matrix(&matrix)),
            None => None,
        };
        Ok(SearchMemory { matrix, blocked, cascade_cache: crate::cascade::CascadeCache::new() })
    }

    /// Splits the memory into `shards` contiguous row ranges for
    /// data-parallel serving: each returned `(row_offset, memory)` pair
    /// owns its rows (and its own pre-packed blocked mirror), so the
    /// shards are independently `Send` to per-shard worker threads.
    ///
    /// Boundaries are aligned to [`LANES`] so every shard except possibly
    /// the last starts on a block boundary and the mirrors slice without
    /// re-packing; a shard count above `rows().div_ceil(LANES)` is
    /// clamped, so fewer (never empty) shards may be returned. Global row
    /// indices are recovered as `row_offset + local_row`, and because
    /// shards are ascending contiguous ranges, a merge that scans shards
    /// in order with a strict `>` comparison preserves the workspace's
    /// lowest-row tie-break.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for `shards == 0` or an empty
    /// memory.
    pub fn split_rows(&self, shards: usize) -> Result<Vec<(usize, SearchMemory)>> {
        if shards == 0 || self.rows() == 0 {
            return Err(LinalgError::Empty { op: "SearchMemory::split_rows" });
        }
        let blocks = self.rows().div_ceil(LANES);
        let shards = shards.min(blocks);
        // Distribute blocks as evenly as possible (the first `blocks %
        // shards` shards take one extra), so exactly `min(shards,
        // blocks)` non-empty shards come back — never fewer.
        let base = blocks / shards;
        let extra = blocks % shards;
        let mut out = Vec::with_capacity(shards);
        let mut start = 0usize;
        for i in 0..shards {
            let shard_blocks = base + usize::from(i < extra);
            let count = (shard_blocks * LANES).min(self.rows() - start);
            out.push((start, self.row_range(start, count)?));
            start += count;
        }
        debug_assert_eq!(start, self.rows());
        Ok(out)
    }

    #[inline]
    pub(crate) fn memory_ref(&self) -> MemoryRef<'_> {
        match &self.blocked {
            Some(b) => MemoryRef::Blocked(b),
            None => MemoryRef::Rows(&self.matrix),
        }
    }

    /// Dot similarity of every row against one query (single-query slice;
    /// see [`BitMatrix::dot_all`]).
    ///
    /// # Panics
    ///
    /// Panics if the query length differs from `cols`.
    pub fn dot_all(&self, query: &BitVector) -> Vec<u32> {
        self.matrix.dot_all(query)
    }

    /// Dot similarity of row `r` with a query.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or `r >= rows()`.
    pub fn row_dot(&self, r: usize, query: &BitVector) -> u32 {
        self.matrix.row_dot(r, query)
    }

    /// Batched dot-similarity sweep (pre-packed; see
    /// [`BitMatrix::dot_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a dimensionality
    /// mismatch.
    pub fn dot_batch(&self, batch: &QueryBatch) -> Result<ScoreMatrix> {
        let mut out = ScoreMatrix::zeros(batch.len(), self.rows());
        self.dot_batch_into(batch, &mut out)?;
        Ok(out)
    }

    /// Like [`SearchMemory::dot_batch`] but reusing `out` as scratch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a dimensionality
    /// mismatch.
    pub fn dot_batch_into(&self, batch: &QueryBatch, out: &mut ScoreMatrix) -> Result<()> {
        if batch.dim() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "dot_batch",
                expected: self.cols(),
                found: batch.dim(),
            });
        }
        out.reset(batch.len(), self.rows());
        crate::batch::dot_batch_dispatch(self.memory_ref(), batch, out);
        Ok(())
    }

    /// Batched associative search with the full score matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a dimensionality
    /// mismatch.
    pub fn search_batch(&self, batch: &QueryBatch) -> Result<SearchResults> {
        Ok(SearchResults::from_scores(self.dot_batch(batch)?))
    }

    /// Winners-only batched search (low-row tie-break).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a dimensionality
    /// mismatch.
    pub fn winners_batch(&self, batch: &QueryBatch) -> Result<Vec<(usize, u32)>> {
        if batch.dim() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "winners_batch",
                expected: self.cols(),
                found: batch.dim(),
            });
        }
        let mut winners = vec![(0usize, 0u32); batch.len()];
        crate::batch::winners_dispatch(self.memory_ref(), batch, &mut winners);
        Ok(winners)
    }

    /// Fused batched top-k search (pre-packed; see
    /// [`BitMatrix::topk_batch`] for the result contract): each query's
    /// `min(k, rows)` best rows by `(score desc, row asc)`, selected
    /// inside the sweep with no score matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `k == 0` or the memory has no
    /// rows, and [`LinalgError::ShapeMismatch`] on a dimensionality
    /// mismatch.
    pub fn topk_batch(&self, batch: &QueryBatch, k: usize) -> Result<TopK> {
        if k == 0 || self.rows() == 0 {
            return Err(LinalgError::Empty { op: "topk_batch" });
        }
        if batch.dim() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "topk_batch",
                expected: self.cols(),
                found: batch.dim(),
            });
        }
        let per_query = k.min(self.rows());
        let mut entries = vec![(0usize, 0u32); batch.len() * per_query];
        crate::batch::topk_dispatch(self.memory_ref(), batch, per_query, &mut entries);
        Ok(TopK::from_flat(batch.len(), k, per_query, entries))
    }
}

// ---------------------------------------------------------------------------
// Per-backend blocked sweep kernels (published via kernel::KernelTable).
// ---------------------------------------------------------------------------

/// Reduces one query's per-lane candidates to the final winner under the
/// workspace tie-break: highest score, then lowest row. Lane candidates
/// carry the lane's *lowest* max-achieving row, so the global lowest
/// max-achieving row is always among them.
#[cfg(target_arch = "x86_64")]
#[inline]
fn reduce_lane_candidates(rows: usize, candidate: impl Fn(usize) -> (usize, u32)) -> (usize, u32) {
    let mut best = (usize::MAX, 0u32);
    for l in 0..LANES {
        let (row, score) = candidate(l);
        if row >= rows {
            continue;
        }
        if score > best.1 || (score == best.1 && row < best.0) {
            best = (row, score);
        }
    }
    if best.0 == usize::MAX {
        (0, 0)
    } else {
        best
    }
}

/// One query × one block of the portable sweep: eight scalar accumulator
/// lanes over the block's panels — the reference accumulation both scalar
/// entry points share (and the oracle the SIMD `*_block_acc` helpers are
/// tested against).
#[inline]
fn scalar_block_acc(m: &BlockedBitMatrix, b: usize, qw: &[u64]) -> [u32; LANES] {
    let mut acc = [0u32; LANES];
    for (w, &x) in qw.iter().enumerate().take(m.words_per_row()) {
        let panel = m.panel(b, w);
        for (a, &p) in acc.iter_mut().zip(panel) {
            *a += (p & x).count_ones();
        }
    }
    acc
}

/// Portable blocked sweep: eight scalar accumulator lanes per panel.
pub(crate) fn scalar_dot_range(
    m: &BlockedBitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    q_count: usize,
    out: &mut [u32],
) {
    let rows = m.rows();
    debug_assert_eq!(out.len(), q_count * rows);
    for q in 0..q_count {
        let qw = batch.query_words(q_offset + q);
        let out_row = &mut out[q * rows..(q + 1) * rows];
        for b in 0..m.row_blocks() {
            let acc = scalar_block_acc(m, b, qw);
            let base = b * LANES;
            let take = LANES.min(rows - base);
            out_row[base..base + take].copy_from_slice(&acc[..take]);
        }
    }
}

/// Portable blocked winners sweep: strict-`>` tracking over ascending
/// rows preserves the low-row tie-break exactly.
pub(crate) fn scalar_winners_range(
    m: &BlockedBitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    out: &mut [(usize, u32)],
) {
    let rows = m.rows();
    for (q, slot) in out.iter_mut().enumerate() {
        let qw = batch.query_words(q_offset + q);
        let mut best = (0usize, 0u32);
        for b in 0..m.row_blocks() {
            let acc = scalar_block_acc(m, b, qw);
            let base = b * LANES;
            let take = LANES.min(rows - base);
            for (l, &s) in acc.iter().enumerate().take(take) {
                if s > best.1 {
                    best = (base + l, s);
                }
            }
        }
        *slot = best;
    }
}

/// Portable blocked top-k sweep: the panel accumulation of
/// [`scalar_block_acc`] feeding one bounded k-best list per query (`k`
/// pre-clamped to the row count; padding lanes are excluded by the
/// `take` bound, so an all-zero padding row can never enter the list).
pub(crate) fn scalar_topk_range(
    m: &BlockedBitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    k: usize,
    out: &mut [(usize, u32)],
) {
    let rows = m.rows();
    for (q, slots) in out.chunks_exact_mut(k).enumerate() {
        let qw = batch.query_words(q_offset + q);
        let mut filled = 0usize;
        for b in 0..m.row_blocks() {
            let acc = scalar_block_acc(m, b, qw);
            let base = b * LANES;
            let take = LANES.min(rows - base);
            for (l, &s) in acc.iter().enumerate().take(take) {
                topk_insert(slots, &mut filled, base + l, s);
            }
        }
        debug_assert_eq!(filled, k);
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86_blocked::{
    avx2_dot_range, avx2_topk_range, avx2_winners_range, avx512_dot_range, avx512_topk_range,
    avx512_winners_range,
};

/// AVX2 and AVX-512 blocked sweeps. All `unsafe fn`s here are published
/// only through kernel tables gated on `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
mod x86_blocked {
    use super::{reduce_lane_candidates, topk_insert, BlockedBitMatrix, LANES};
    use crate::kernel::x86::popcnt_bytes_avx2;
    use crate::QueryBatch;
    use std::arch::x86_64::*;

    pub(crate) fn avx512_dot_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        q_count: usize,
        out: &mut [u32],
    ) {
        // SAFETY: table selected only after avx512f+vpopcntdq detection.
        unsafe { avx512_dot_range_impl(m, batch, q_offset, q_count, out) }
    }

    pub(crate) fn avx512_winners_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        out: &mut [(usize, u32)],
    ) {
        // SAFETY: table selected only after avx512f+vpopcntdq detection.
        unsafe { avx512_winners_range_impl(m, batch, q_offset, out) }
    }

    pub(crate) fn avx2_dot_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        q_count: usize,
        out: &mut [u32],
    ) {
        // SAFETY: table selected only after avx2 detection.
        unsafe { avx2_dot_range_impl(m, batch, q_offset, q_count, out) }
    }

    pub(crate) fn avx2_winners_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        out: &mut [(usize, u32)],
    ) {
        // SAFETY: table selected only after avx2 detection.
        unsafe { avx2_winners_range_impl(m, batch, q_offset, out) }
    }

    pub(crate) fn avx512_topk_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        k: usize,
        out: &mut [(usize, u32)],
    ) {
        // SAFETY: table selected only after avx512f+vpopcntdq detection.
        unsafe { avx512_topk_range_impl(m, batch, q_offset, k, out) }
    }

    pub(crate) fn avx2_topk_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        k: usize,
        out: &mut [(usize, u32)],
    ) {
        // SAFETY: table selected only after avx2 detection.
        unsafe { avx2_topk_range_impl(m, batch, q_offset, k, out) }
    }

    /// One query × one block: per-lane popcount accumulator over the
    /// block's panels (8 × u64 lane counts in one ZMM register).
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn avx512_block_acc(data: *const u64, wpr: usize, qw: &[u64]) -> __m512i {
        let mut acc = _mm512_setzero_si512();
        for (w, &x) in qw.iter().enumerate().take(wpr) {
            let panel = _mm512_loadu_si512(data.add(w * LANES) as *const _);
            let qv = _mm512_set1_epi64(x as i64);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(panel, qv)));
        }
        acc
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn avx512_dot_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        q_count: usize,
        out: &mut [u32],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        debug_assert_eq!(out.len(), q_count * rows);
        for q in 0..q_count {
            let qw = batch.query_words(q_offset + q);
            let out_row = &mut out[q * rows..(q + 1) * rows];
            for b in 0..m.row_blocks() {
                let acc = avx512_block_acc(data.add(b * wpr * LANES), wpr, qw);
                let acc32 = _mm512_cvtepi64_epi32(acc);
                let base = b * LANES;
                if base + LANES <= rows {
                    _mm256_storeu_si256(out_row.as_mut_ptr().add(base) as *mut __m256i, acc32);
                } else {
                    let mut tmp = [0u32; LANES];
                    _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, acc32);
                    let take = rows - base;
                    out_row[base..base + take].copy_from_slice(&tmp[..take]);
                }
            }
        }
    }

    /// Fused winners sweep: per-lane running best `(score, block)` kept in
    /// ZMM registers across the whole row sweep — strict `>` preserves the
    /// lowest block per lane, and the final cross-lane reduction applies
    /// the global lowest-row tie-break.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn avx512_winners_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        out: &mut [(usize, u32)],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        for (q, slot) in out.iter_mut().enumerate() {
            let qw = batch.query_words(q_offset + q);
            let mut best_score = _mm512_setzero_si512();
            let mut best_block = _mm512_setzero_si512();
            for b in 0..m.row_blocks() {
                let acc = avx512_block_acc(data.add(b * wpr * LANES), wpr, qw);
                let gt = _mm512_cmpgt_epu64_mask(acc, best_score);
                best_score = _mm512_mask_mov_epi64(best_score, gt, acc);
                best_block = _mm512_mask_mov_epi64(best_block, gt, _mm512_set1_epi64(b as i64));
            }
            let mut scores = [0u64; LANES];
            let mut blocks = [0u64; LANES];
            _mm512_storeu_si512(scores.as_mut_ptr() as *mut _, best_score);
            _mm512_storeu_si512(blocks.as_mut_ptr() as *mut _, best_block);
            *slot = reduce_lane_candidates(rows, |l| {
                (blocks[l] as usize * LANES + l, scores[l] as u32)
            });
        }
    }

    /// Fused top-k sweep: once a query's k-best list is full, a whole
    /// block is skipped with one vector compare against the k-th score —
    /// only a lane that strictly beats the threshold (and therefore would
    /// displace the current k-th entry even after tie-breaks) pays the
    /// extract + insert cost. Padding lanes are excluded by `take`.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn avx512_topk_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        k: usize,
        out: &mut [(usize, u32)],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        for (q, slots) in out.chunks_exact_mut(k).enumerate() {
            let qw = batch.query_words(q_offset + q);
            let mut filled = 0usize;
            for b in 0..m.row_blocks() {
                let acc = avx512_block_acc(data.add(b * wpr * LANES), wpr, qw);
                if filled == k {
                    let thr = _mm512_set1_epi64(slots[k - 1].1 as i64);
                    if _mm512_cmpgt_epu64_mask(acc, thr) == 0 {
                        continue;
                    }
                }
                let mut tmp = [0u32; LANES];
                _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, _mm512_cvtepi64_epi32(acc));
                let base = b * LANES;
                let take = LANES.min(rows - base);
                for (l, &s) in tmp.iter().enumerate().take(take) {
                    topk_insert(slots, &mut filled, base + l, s);
                }
            }
            debug_assert_eq!(filled, k);
        }
    }

    /// One query × one block on AVX2: the 8-lane panel is two 256-bit
    /// halves; byte counts accumulate across runs of ≤ 31 words before one
    /// `psadbw` horizontal step per half, yielding 8 u64 lane counts.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_block_acc(data: *const u64, wpr: usize, qw: &[u64]) -> (__m256i, __m256i) {
        let zero = _mm256_setzero_si256();
        let mut acc_lo = zero;
        let mut acc_hi = zero;
        let mut w = 0usize;
        while w < wpr {
            let run = (wpr - w).min(31);
            let mut bytes_lo = zero;
            let mut bytes_hi = zero;
            for (i, &qword) in qw.iter().enumerate().take(w + run).skip(w) {
                let qv = _mm256_set1_epi64x(qword as i64);
                let p = data.add(i * LANES);
                let p_lo = _mm256_loadu_si256(p as *const __m256i);
                let p_hi = _mm256_loadu_si256(p.add(4) as *const __m256i);
                bytes_lo = _mm256_add_epi8(bytes_lo, popcnt_bytes_avx2(_mm256_and_si256(p_lo, qv)));
                bytes_hi = _mm256_add_epi8(bytes_hi, popcnt_bytes_avx2(_mm256_and_si256(p_hi, qv)));
            }
            acc_lo = _mm256_add_epi64(acc_lo, _mm256_sad_epu8(bytes_lo, zero));
            acc_hi = _mm256_add_epi64(acc_hi, _mm256_sad_epu8(bytes_hi, zero));
            w += run;
        }
        (acc_lo, acc_hi)
    }

    /// Narrows two 4×u64 lane-count halves to 8 u32 scores (counts are
    /// far below 2³², so the upper dwords are zero).
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_extract(acc_lo: __m256i, acc_hi: __m256i) -> [u32; LANES] {
        let idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        let lo32 = _mm256_permutevar8x32_epi32(acc_lo, idx);
        let hi32 = _mm256_permutevar8x32_epi32(acc_hi, idx);
        let packed = _mm256_inserti128_si256(lo32, _mm256_castsi256_si128(hi32), 1);
        let mut scores = [0u32; LANES];
        _mm256_storeu_si256(scores.as_mut_ptr() as *mut __m256i, packed);
        scores
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_dot_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        q_count: usize,
        out: &mut [u32],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        debug_assert_eq!(out.len(), q_count * rows);
        for q in 0..q_count {
            let qw = batch.query_words(q_offset + q);
            let out_row = &mut out[q * rows..(q + 1) * rows];
            for b in 0..m.row_blocks() {
                let (acc_lo, acc_hi) = avx2_block_acc(data.add(b * wpr * LANES), wpr, qw);
                let scores = avx2_extract(acc_lo, acc_hi);
                let base = b * LANES;
                let take = LANES.min(rows - base);
                out_row[base..base + take].copy_from_slice(&scores[..take]);
            }
        }
    }

    /// Fused winners sweep: per-lane running best `(score, block)` kept in
    /// YMM registers (64-bit lanes; scores fit in i64 so signed compares
    /// are exact), reduced once per query with the global lowest-row
    /// tie-break.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_winners_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        out: &mut [(usize, u32)],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        for (q, slot) in out.iter_mut().enumerate() {
            let qw = batch.query_words(q_offset + q);
            let zero = _mm256_setzero_si256();
            let mut best_lo = zero;
            let mut best_hi = zero;
            let mut blk_lo = zero;
            let mut blk_hi = zero;
            for b in 0..m.row_blocks() {
                let (acc_lo, acc_hi) = avx2_block_acc(data.add(b * wpr * LANES), wpr, qw);
                let cur = _mm256_set1_epi64x(b as i64);
                let gt_lo = _mm256_cmpgt_epi64(acc_lo, best_lo);
                best_lo = _mm256_blendv_epi8(best_lo, acc_lo, gt_lo);
                blk_lo = _mm256_blendv_epi8(blk_lo, cur, gt_lo);
                let gt_hi = _mm256_cmpgt_epi64(acc_hi, best_hi);
                best_hi = _mm256_blendv_epi8(best_hi, acc_hi, gt_hi);
                blk_hi = _mm256_blendv_epi8(blk_hi, cur, gt_hi);
            }
            let mut scores = [0u64; LANES];
            let mut blocks = [0u64; LANES];
            _mm256_storeu_si256(scores.as_mut_ptr() as *mut __m256i, best_lo);
            _mm256_storeu_si256(scores.as_mut_ptr().add(4) as *mut __m256i, best_hi);
            _mm256_storeu_si256(blocks.as_mut_ptr() as *mut __m256i, blk_lo);
            _mm256_storeu_si256(blocks.as_mut_ptr().add(4) as *mut __m256i, blk_hi);
            *slot = super::reduce_lane_candidates(rows, |l| {
                (blocks[l] as usize * LANES + l, scores[l] as u32)
            });
        }
    }

    /// Fused top-k sweep: full blocks are skipped with two signed 64-bit
    /// compares against the k-th score (scores fit in i64, so signed
    /// compares are exact); only a beating lane pays extract + insert.
    /// Padding lanes are excluded by `take`.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_topk_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        k: usize,
        out: &mut [(usize, u32)],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        for (q, slots) in out.chunks_exact_mut(k).enumerate() {
            let qw = batch.query_words(q_offset + q);
            let mut filled = 0usize;
            for b in 0..m.row_blocks() {
                let (acc_lo, acc_hi) = avx2_block_acc(data.add(b * wpr * LANES), wpr, qw);
                if filled == k {
                    let thr = _mm256_set1_epi64x(slots[k - 1].1 as i64);
                    let gt = _mm256_or_si256(
                        _mm256_cmpgt_epi64(acc_lo, thr),
                        _mm256_cmpgt_epi64(acc_hi, thr),
                    );
                    if _mm256_movemask_epi8(gt) == 0 {
                        continue;
                    }
                }
                let scores = avx2_extract(acc_lo, acc_hi);
                let base = b * LANES;
                let take = LANES.min(rows - base);
                for (l, &s) in scores.iter().enumerate().take(take) {
                    topk_insert(slots, &mut filled, base + l, s);
                }
            }
            debug_assert_eq!(filled, k);
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) use neon_blocked::{neon_dot_range, neon_topk_range, neon_winners_range};

/// NEON blocked sweeps: the 8-lane panel is four 128-bit vectors, with
/// `vcnt` byte counts widened once per ≤ 31-word run.
#[cfg(target_arch = "aarch64")]
mod neon_blocked {
    use super::{topk_insert, BlockedBitMatrix, LANES};
    use crate::QueryBatch;
    use std::arch::aarch64::*;

    pub(crate) fn neon_dot_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        q_count: usize,
        out: &mut [u32],
    ) {
        // SAFETY: table selected only after neon detection.
        unsafe { neon_dot_range_impl(m, batch, q_offset, q_count, out) }
    }

    pub(crate) fn neon_winners_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        out: &mut [(usize, u32)],
    ) {
        // SAFETY: table selected only after neon detection.
        unsafe { neon_winners_range_impl(m, batch, q_offset, out) }
    }

    pub(crate) fn neon_topk_range(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        k: usize,
        out: &mut [(usize, u32)],
    ) {
        // SAFETY: table selected only after neon detection.
        unsafe { neon_topk_range_impl(m, batch, q_offset, k, out) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_block_scores(data: *const u64, wpr: usize, qw: &[u64]) -> [u32; LANES] {
        let mut acc = [vdupq_n_u64(0); 4];
        let mut w = 0usize;
        while w < wpr {
            let run = (wpr - w).min(31);
            let mut bytes = [vdupq_n_u8(0); 4];
            for (i, &qword) in qw.iter().enumerate().take(w + run).skip(w) {
                let qv = vdupq_n_u64(qword);
                let p = data.add(i * LANES);
                for (h, byte_acc) in bytes.iter_mut().enumerate() {
                    let panel = vld1q_u64(p.add(2 * h));
                    *byte_acc =
                        vaddq_u8(*byte_acc, vcntq_u8(vreinterpretq_u8_u64(vandq_u64(panel, qv))));
                }
            }
            for (a, &b) in acc.iter_mut().zip(&bytes) {
                *a = vaddq_u64(*a, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(b))));
            }
            w += run;
        }
        let mut scores = [0u32; LANES];
        for (h, &a) in acc.iter().enumerate() {
            scores[2 * h] = vgetq_lane_u64(a, 0) as u32;
            scores[2 * h + 1] = vgetq_lane_u64(a, 1) as u32;
        }
        scores
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_dot_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        q_count: usize,
        out: &mut [u32],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        debug_assert_eq!(out.len(), q_count * rows);
        for q in 0..q_count {
            let qw = batch.query_words(q_offset + q);
            let out_row = &mut out[q * rows..(q + 1) * rows];
            for b in 0..m.row_blocks() {
                let scores = neon_block_scores(data.add(b * wpr * LANES), wpr, qw);
                let base = b * LANES;
                let take = LANES.min(rows - base);
                out_row[base..base + take].copy_from_slice(&scores[..take]);
            }
        }
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_winners_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        out: &mut [(usize, u32)],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        for (q, slot) in out.iter_mut().enumerate() {
            let qw = batch.query_words(q_offset + q);
            let mut best = (0usize, 0u32);
            for b in 0..m.row_blocks() {
                let scores = neon_block_scores(data.add(b * wpr * LANES), wpr, qw);
                let base = b * LANES;
                let take = LANES.min(rows - base);
                for (l, &s) in scores.iter().enumerate().take(take) {
                    if s > best.1 {
                        best = (base + l, s);
                    }
                }
            }
            *slot = best;
        }
    }

    /// Fused top-k sweep: once the k-best list is full, lanes that fail
    /// to beat the k-th score fall through the insert's cheap first
    /// branch; padding lanes are excluded by `take`.
    #[target_feature(enable = "neon")]
    unsafe fn neon_topk_range_impl(
        m: &BlockedBitMatrix,
        batch: &QueryBatch,
        q_offset: usize,
        k: usize,
        out: &mut [(usize, u32)],
    ) {
        let rows = m.rows();
        let wpr = m.words_per_row();
        let data = m.data().as_ptr();
        for (q, slots) in out.chunks_exact_mut(k).enumerate() {
            let qw = batch.query_words(q_offset + q);
            let mut filled = 0usize;
            for b in 0..m.row_blocks() {
                let scores = neon_block_scores(data.add(b * wpr * LANES), wpr, qw);
                let base = b * LANES;
                let take = LANES.min(rows - base);
                for (l, &s) in scores.iter().enumerate().take(take) {
                    topk_insert(slots, &mut filled, base + l, s);
                }
            }
            debug_assert_eq!(filled, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix(rows: usize, cols: usize) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, cols);
        let mut state = 0x1234_5678_9abc_def0u64;
        for r in 0..rows {
            for c in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if state >> 63 == 1 {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (rows, cols) in [(1usize, 1usize), (7, 64), (8, 65), (9, 128), (16, 130), (13, 300)] {
            let m = sample_matrix(rows, cols);
            let blocked = BlockedBitMatrix::from_matrix(&m);
            assert_eq!(blocked.shape(), m.shape());
            assert_eq!(blocked.row_blocks(), rows.div_ceil(LANES));
            assert_eq!(blocked.to_matrix(), m, "{rows}x{cols}");
            for r in 0..rows {
                assert_eq!(blocked.row(r), m.row(r), "{rows}x{cols} row {r}");
            }
        }
    }

    #[test]
    fn padding_lanes_are_zero() {
        let m = sample_matrix(5, 64);
        let blocked = BlockedBitMatrix::from_matrix(&m);
        for w in 0..blocked.words_per_row() {
            let panel = blocked.panel(0, w);
            for &lane in &panel[5..] {
                assert_eq!(lane, 0);
            }
        }
    }

    #[test]
    fn search_memory_matches_matrix() {
        let m = sample_matrix(10, 96);
        let mem = SearchMemory::new(m.clone());
        let queries: Vec<BitVector> =
            (0..9).map(|i| sample_matrix(1, 96).row(0).rotate_left(i)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let scores = mem.dot_batch(&batch).unwrap();
        let reference = m.dot_batch(&batch).unwrap();
        assert_eq!(scores, reference);
        assert_eq!(mem.winners_batch(&batch).unwrap(), m.winners_batch(&batch).unwrap());
        assert_eq!(mem, SearchMemory::new(m));
    }

    #[test]
    fn search_memory_modify_rebuilds() {
        let m = sample_matrix(9, 70);
        let mut mem = SearchMemory::new(m);
        mem.modify(|mat| mat.set(8, 69, true));
        assert!(mem.matrix().get(8, 69));
        if let Some(blocked) = mem.blocked() {
            assert!(blocked.row(8).get(69), "blocked mirror must track mutation");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let blocked = BlockedBitMatrix::from_matrix(&sample_matrix(4, 64));
        let batch = QueryBatch::from_vectors(&[BitVector::zeros(65)]).unwrap();
        assert!(blocked.dot_batch(&batch).is_err());
        assert!(blocked.winners_batch(&batch).is_err());
    }

    #[test]
    fn blocked_row_range_matches_row_major_slice() {
        let m = sample_matrix(21, 130);
        let blocked = BlockedBitMatrix::from_matrix(&m);
        for (start, count) in [(0usize, 8usize), (8, 8), (8, 13), (16, 5), (0, 21)] {
            let sub = blocked.row_range(start, count).unwrap();
            assert_eq!(sub.to_matrix(), m.row_range(start, count).unwrap(), "{start}+{count}");
            // Padding lanes of the final block stay zero even when the
            // range cuts through a source block.
            let last = sub.row_blocks() - 1;
            for w in 0..sub.words_per_row() {
                for (l, &lane) in sub.panel(last, w).iter().enumerate() {
                    if last * LANES + l >= count {
                        assert_eq!(lane, 0, "padding lane {l} of word {w} dirty");
                    }
                }
            }
        }
        assert!(blocked.row_range(3, 4).is_err(), "unaligned start must be rejected");
        assert!(blocked.row_range(8, 0).is_err());
        assert!(blocked.row_range(16, 6).is_err());
    }

    #[test]
    fn split_rows_covers_all_rows_and_preserves_winners() {
        let m = sample_matrix(29, 96);
        let mem = SearchMemory::new(m.clone());
        let queries: Vec<BitVector> =
            (0..7).map(|i| sample_matrix(1, 96).row(0).rotate_left(i)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let reference = mem.winners_batch(&batch).unwrap();
        for shards in [1usize, 2, 3, 4, 100] {
            let parts = mem.split_rows(shards).unwrap();
            // Exactly min(shards, blocks) shards: 29 rows = 4 blocks, so
            // e.g. 3 shards must yield 3 parts (2+1+1 blocks), not 2.
            assert_eq!(parts.len(), shards.min(29usize.div_ceil(LANES)), "{shards} shards");
            // Contiguous ascending cover of all rows.
            let mut next = 0usize;
            for (offset, part) in &parts {
                assert_eq!(*offset, next);
                for r in 0..part.rows() {
                    assert_eq!(part.matrix().row(r), m.row(offset + r));
                }
                next += part.rows();
            }
            assert_eq!(next, m.rows(), "{shards} shards");
            // Shard-order merge with strict > reproduces the global
            // winners (including the low-row tie-break).
            let merged: Vec<(usize, u32)> = (0..batch.len())
                .map(|q| {
                    let mut best = (0usize, 0u32);
                    let mut first = true;
                    for (offset, part) in &parts {
                        let (row, score) = part.winners_batch(&batch).unwrap()[q];
                        if first || score > best.1 {
                            best = (offset + row, score);
                            first = false;
                        }
                    }
                    best
                })
                .collect();
            assert_eq!(merged, reference, "{shards} shards");
        }
        assert!(mem.split_rows(0).is_err());
    }
}
