//! Deterministic random number helpers.
//!
//! All stochastic stages of the reproduction (projection matrices, dataset
//! synthesis, k-means seeding, stochastic training) draw from explicitly
//! seeded generators so that every table and figure is regenerable
//! bit-for-bit. The paper averages over 5 trials; the bench harness does the
//! same by offsetting a base seed per trial.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = hd_linalg::rng::seeded(42);
/// let mut b = hd_linalg::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a stream-specific seed from a base seed and a stream index.
///
/// Uses SplitMix64 mixing so nearby `(seed, stream)` pairs produce
/// decorrelated generators.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples from a normal distribution via the Box–Muller transform.
///
/// `rand_distr` is not on the approved offline dependency list, so the
/// Gaussian sampling needed by the synthetic datasets lives here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f32,
    std_dev: f32,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f32, std_dev: f32) -> Self {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "std_dev must be finite and non-negative");
        Normal { mean, std_dev }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f32 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f32 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller: u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z as f32
    }

    /// Fills `out` with independent samples.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f32]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

impl Default for Normal {
    /// The standard normal `N(0, 1)`.
    fn default() -> Self {
        Normal::new(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s0 = derive_seed(100, 0);
        let s1 = derive_seed(100, 1);
        assert_ne!(s0, s1);
        // Stability check: the mix must be a pure function.
        assert_eq!(derive_seed(100, 1), s1);
    }

    #[test]
    fn normal_moments_approximate() {
        let dist = Normal::new(3.0, 2.0);
        let mut rng = seeded(99);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = crate::vector::mean(&samples);
        let var = crate::vector::variance(&samples);
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let dist = Normal::new(5.0, 0.0);
        let mut rng = seeded(1);
        for _ in 0..10 {
            assert_eq!(dist.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn fill_writes_every_slot() {
        let dist = Normal::default();
        let mut rng = seeded(3);
        let mut buf = vec![f32::NAN; 32];
        dist.fill(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn negative_std_panics() {
        Normal::new(0.0, -1.0);
    }
}
