//! Row-major dense `f32` matrix.

use crate::error::{LinalgError, Result};
use crate::vector;

/// A row-major dense matrix of `f32` values.
///
/// This is the workhorse behind floating-point associative memories, raw
/// projection matrices, and dataset feature tables. Rows are stored
/// contiguously, so iterating a row is cache-friendly; the column-major
/// operations ([`Matrix::matvec_t`]) are written to stream over rows anyway.
///
/// # Example
///
/// ```
/// use hd_linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m.set(0, 0, 1.0);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row set and
    /// [`LinalgError::RaggedRows`] if rows disagree on length.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            if r.len() != cols {
                return Err(LinalgError::RaggedRows { first: cols, row: i, len: r.len() });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "matrix index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(r < self.rows && c < self.cols, "matrix index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a freshly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column index {c} out of bounds");
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Overwrites column `c` with `values`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `values.len() != rows`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn set_column(&mut self, c: usize, values: &[f32]) -> Result<()> {
        assert!(c < self.cols, "column index {c} out of bounds");
        if values.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "set_column",
                expected: self.rows,
                found: values.len(),
            });
        }
        for (r, v) in values.iter().enumerate() {
            self.data[r * self.cols + c] = *v;
        }
        Ok(())
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Copies out the first `n` rows as a new matrix — handy for carving a
    /// probe batch out of a larger feature set.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `n > rows`.
    pub fn take_rows(&self, n: usize) -> Result<Matrix> {
        if n > self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "take_rows",
                expected: self.rows,
                found: n,
            });
        }
        Matrix::from_vec(n, self.cols, self.data[..n * self.cols].to_vec())
    }

    /// Computes `y = A·x` where `A` is `self` (`rows × cols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                expected: self.cols,
                found: x.len(),
            });
        }
        Ok(self.iter_rows().map(|row| vector::dot(row, x)).collect())
    }

    /// Computes `y = Aᵀ·x` where `A` is `self` (so `y` has length `cols`).
    ///
    /// This is the shape used by random-projection encoding (`H = Mᵀ F`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                expected: self.rows,
                found: x.len(),
            });
        }
        let mut y = vec![0.0f32; self.cols];
        for (row, &xi) in self.iter_rows().zip(x.iter()) {
            if xi == 0.0 {
                continue;
            }
            vector::axpy(xi, row, &mut y);
        }
        Ok(y)
    }

    /// Computes the matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            // Accumulate into the output row to keep the inner loop streaming
            // over contiguous memory of `other`.
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let out_row = out.row_mut(i);
                vector::axpy(aik, b_row, out_row);
            }
        }
        Ok(out)
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a 0-element matrix.
    pub fn mean(&self) -> Result<f32> {
        if self.data.is_empty() {
            return Err(LinalgError::Empty { op: "mean" });
        }
        Ok(vector::mean(&self.data))
    }

    /// Multiplies every element by `factor` in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds `alpha * row_values` to row `r` in place.
    ///
    /// This is the primitive behind the iterative-learning update
    /// `C ← C ± α·H` (paper Eqs. 2 and 6).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `row_values.len() != cols`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn add_scaled_row(&mut self, r: usize, alpha: f32, row_values: &[f32]) -> Result<()> {
        if row_values.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "add_scaled_row",
                expected: self.cols,
                found: row_values.len(),
            });
        }
        vector::axpy(alpha, row_values, self.row_mut(r));
        Ok(())
    }

    /// Element-wise addition, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                expected: self.data.len(),
                found: other.data.len(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Frobenius norm (`sqrt(Σ aᵢⱼ²)`).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0f32, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Matrix::from_rows(&[&[1.0f32, 2.0][..], &[1.0][..]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn empty_rows_rejected() {
        let rows: &[&[f32]] = &[];
        assert!(matches!(Matrix::from_rows(rows), Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn matvec_basic() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, 1.0]).unwrap(), vec![4.0, 10.0]);
    }

    #[test]
    fn matvec_shape_error() {
        let m = sample();
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let m = sample();
        let x = [0.5f32, -1.5];
        let direct = m.matvec_t(&x).unwrap();
        let via_transpose = m.transpose().matvec(&x).unwrap();
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let eye = Matrix::from_rows(&[
            &[1.0f32, 0.0, 0.0][..],
            &[0.0, 1.0, 0.0][..],
            &[0.0, 0.0, 1.0][..],
        ])
        .unwrap();
        assert_eq!(m.matmul(&eye).unwrap(), m);
    }

    #[test]
    fn matmul_shape_error() {
        let m = sample();
        assert!(m.matmul(&sample()).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn column_roundtrip() {
        let mut m = sample();
        m.set_column(1, &[9.0, 10.0]).unwrap();
        assert_eq!(m.column(1), vec![9.0, 10.0]);
    }

    #[test]
    fn set_column_shape_error() {
        let mut m = sample();
        assert!(m.set_column(0, &[1.0]).is_err());
    }

    #[test]
    fn mean_and_scale() {
        let mut m = sample();
        assert!((m.mean().unwrap() - 3.5).abs() < 1e-6);
        m.scale(2.0);
        assert_eq!(m.get(0, 0), 2.0);
    }

    #[test]
    fn add_scaled_row_updates() {
        let mut m = sample();
        m.add_scaled_row(0, 2.0, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(m.row(0), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn add_elementwise() {
        let m = sample();
        let sum = m.add(&m).unwrap();
        assert_eq!(sum.get(1, 1), 10.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0f32, 4.0][..]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(5, 0);
    }
}
