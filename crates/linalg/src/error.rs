//! Error types for the linear algebra substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by shape-checked linear algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// `expected` and `found` describe the dimension that failed to match,
    /// and `op` names the operation that was attempted.
    ShapeMismatch {
        /// Operation that was attempted (e.g. `"matvec"`).
        op: &'static str,
        /// The dimension the operation required.
        expected: usize,
        /// The dimension that was actually supplied.
        found: usize,
    },
    /// A matrix or vector was constructed with inconsistent row lengths.
    RaggedRows {
        /// Length of the first row.
        first: usize,
        /// Index of the offending row.
        row: usize,
        /// Length of the offending row.
        len: usize,
    },
    /// An operation that requires a non-empty operand received an empty one.
    Empty {
        /// Operation that was attempted.
        op: &'static str,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, expected, found } => {
                write!(f, "shape mismatch in {op}: expected dimension {expected}, found {found}")
            }
            LinalgError::RaggedRows { first, row, len } => {
                write!(f, "ragged rows: row 0 has length {first} but row {row} has length {len}")
            }
            LinalgError::Empty { op } => write!(f, "operation {op} requires a non-empty operand"),
            LinalgError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for dimension {bound}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch { op: "matvec", expected: 3, found: 2 };
        assert_eq!(e.to_string(), "shape mismatch in matvec: expected dimension 3, found 2");
    }

    #[test]
    fn display_ragged() {
        let e = LinalgError::RaggedRows { first: 4, row: 2, len: 3 };
        assert!(e.to_string().contains("row 2"));
    }

    #[test]
    fn display_empty_and_oob() {
        assert!(LinalgError::Empty { op: "mean" }.to_string().contains("mean"));
        assert!(LinalgError::IndexOutOfBounds { index: 9, bound: 4 }.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
