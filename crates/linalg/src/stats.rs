//! Small statistics helpers shared by the evaluation harness.

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Used by the bench harness to aggregate accuracy over the paper's
/// 5-trial averaging protocol without storing every sample.
///
/// # Example
///
/// ```
/// use hd_linalg::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

/// Classification accuracy: fraction of `predictions[i] == labels[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "accuracy: length mismatch");
    assert!(!predictions.is_empty(), "accuracy: empty input");
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / predictions.len() as f64
}

/// A `k × k` confusion matrix over class labels `0..k`.
///
/// Row = true class, column = predicted class. This is the structure that
/// drives MEMHD's cluster-allocation phase (§III-A-2): classes with high
/// off-diagonal mass receive additional centroids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an all-zero `k × k` confusion matrix.
    pub fn new(k: usize) -> Self {
        ConfusionMatrix { k, counts: vec![0; k * k] }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is `>= k`.
    pub fn record(&mut self, true_class: usize, predicted_class: usize) {
        assert!(true_class < self.k && predicted_class < self.k, "class label out of range");
        self.counts[true_class * self.k + predicted_class] += 1;
    }

    /// Count of samples with the given true/predicted pair.
    ///
    /// # Panics
    ///
    /// Panics if either label is `>= k`.
    pub fn count(&self, true_class: usize, predicted_class: usize) -> u64 {
        assert!(true_class < self.k && predicted_class < self.k, "class label out of range");
        self.counts[true_class * self.k + predicted_class]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of misclassified samples whose *true* class is `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= k`.
    pub fn misses_for_class(&self, class: usize) -> u64 {
        assert!(class < self.k, "class label out of range");
        let row = &self.counts[class * self.k..(class + 1) * self.k];
        row.iter().sum::<u64>() - row[class]
    }

    /// Total samples whose true class is `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= k`.
    pub fn row_total(&self, class: usize) -> u64 {
        assert!(class < self.k, "class label out of range");
        self.counts[class * self.k..(class + 1) * self.k].iter().sum()
    }

    /// Misclassification *rate* per class (misses / row total; 0 for empty
    /// rows). This is the allocation priority signal in §III-A-2.
    pub fn miss_rates(&self) -> Vec<f64> {
        (0..self.k)
            .map(|c| {
                let total = self.row_total(c);
                if total == 0 {
                    0.0
                } else {
                    self.misses_for_class(c) as f64 / total as f64
                }
            })
            .collect()
    }

    /// Overall accuracy (diagonal mass / total). Returns 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.k).map(|c| self.count(c, c)).sum();
        diag as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn accuracy_known() {
        assert!((accuracy(&[0, 1, 2, 2], &[0, 1, 1, 2]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 0);
        assert_eq!(cm.total(), 5);
        assert_eq!(cm.count(0, 1), 2);
        assert_eq!(cm.misses_for_class(0), 2);
        assert_eq!(cm.misses_for_class(1), 0);
        assert_eq!(cm.row_total(0), 3);
        assert!((cm.accuracy() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn miss_rates_normalized() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 1); // class 0: 1/1 wrong
        cm.record(1, 1);
        cm.record(1, 1); // class 1: 0/2 wrong
        let rates = cm.miss_rates();
        assert_eq!(rates, vec![1.0, 0.0]);
    }

    #[test]
    fn miss_rates_empty_row_is_zero() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.miss_rates(), vec![0.0, 0.0]);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
