//! Property-based tests for k-means: structural invariants that must hold
//! for any data, any k, and any metric.

use hd_clustering::{kmeans, KmeansConfig, KmeansDistance, KmeansInit};
use hd_linalg::Matrix;
use proptest::prelude::*;

fn data_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..20, 1usize..6).prop_flat_map(|(n, d)| {
        prop::collection::vec(prop::collection::vec(-50.0f32..50.0, d), n)
            .prop_map(|rows| Matrix::from_rows(&rows).expect("consistent rows"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every point gets a valid assignment and every cluster index is used
    /// or repaired away; sizes sum to n.
    #[test]
    fn assignments_partition_the_data(
        data in data_matrix(),
        k in 1usize..5,
        metric in prop::sample::select(vec![
            KmeansDistance::DotSimilarity,
            KmeansDistance::Euclidean,
            KmeansDistance::Cosine,
        ]),
        seed in 0u64..20,
    ) {
        prop_assume!(k <= data.rows());
        let cfg = KmeansConfig::new(k)
            .with_distance(metric)
            .with_max_iters(10)
            .with_seed(seed);
        let r = kmeans(&data, &cfg).unwrap();
        prop_assert_eq!(r.assignments.len(), data.rows());
        for &a in &r.assignments {
            prop_assert!(a < k);
        }
        prop_assert_eq!(r.cluster_sizes().iter().sum::<usize>(), data.rows());
        prop_assert_eq!(r.centroids.shape(), (k, data.cols()));
        prop_assert!(r.inertia >= 0.0);
        prop_assert!(r.iterations >= 1 && r.iterations <= 10);
    }

    /// With k = 1 and Euclidean distance, the centroid is the data mean
    /// and the inertia equals the total variance mass.
    #[test]
    fn single_cluster_is_the_mean(data in data_matrix(), seed in 0u64..10) {
        let cfg = KmeansConfig::new(1)
            .with_distance(KmeansDistance::Euclidean)
            .with_seed(seed);
        let r = kmeans(&data, &cfg).unwrap();
        let (n, d) = data.shape();
        for c in 0..d {
            let mean: f64 =
                (0..n).map(|i| data.get(i, c) as f64).sum::<f64>() / n as f64;
            let got = r.centroids.get(0, c) as f64;
            prop_assert!(
                (got - mean).abs() <= 1e-3 * (1.0 + mean.abs()),
                "col {c}: centroid {got} vs mean {mean}"
            );
        }
    }

    /// More clusters never increase Euclidean inertia (on the same seed
    /// family, comparing best-of-3 seeds to smooth seeding luck).
    #[test]
    fn inertia_decreases_with_k(data in data_matrix()) {
        prop_assume!(data.rows() >= 4);
        let best = |k: usize| -> f64 {
            (0..3u64)
                .map(|s| {
                    let cfg = KmeansConfig::new(k)
                        .with_distance(KmeansDistance::Euclidean)
                        .with_max_iters(20)
                        .with_seed(s);
                    kmeans(&data, &cfg).unwrap().inertia
                })
                .fold(f64::INFINITY, f64::min)
        };
        let i1 = best(1);
        let i2 = best(2);
        let i4 = best(4);
        prop_assert!(i2 <= i1 + 1e-6, "k=2 inertia {i2} > k=1 {i1}");
        prop_assert!(i4 <= i2 + 1e-6, "k=4 inertia {i4} > k=2 {i2}");
    }

    /// Random init and k-means++ both satisfy the same structural
    /// invariants.
    #[test]
    fn init_strategies_equivalent_contracts(
        data in data_matrix(),
        k in 1usize..4,
        seed in 0u64..10,
    ) {
        prop_assume!(k <= data.rows());
        for init in [KmeansInit::KmeansPlusPlus, KmeansInit::Random] {
            let cfg = KmeansConfig::new(k)
                .with_distance(KmeansDistance::Euclidean)
                .with_init(init)
                .with_seed(seed);
            let r = kmeans(&data, &cfg).unwrap();
            prop_assert_eq!(r.assignments.len(), data.rows());
            prop_assert!(r.inertia.is_finite());
        }
    }
}
