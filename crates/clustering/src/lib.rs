//! K-means clustering with pluggable distance metrics.
//!
//! MEMHD initializes its multi-centroid associative memory by running
//! k-means *per class* over the encoded sample hypervectors (paper
//! §III-A-1). The paper's key detail is that the clustering metric is the
//! **same dot similarity used by the associative search**, so the initial
//! centroids are already optimized for the inference-time comparison. This
//! crate provides that (plus Euclidean and cosine for cross-checks), with
//! k-means++ or random seeding, deterministic behavior under a seed, and
//! empty-cluster repair.
//!
//! # Example
//!
//! ```
//! use hd_clustering::{kmeans, KmeansConfig, KmeansDistance};
//! use hd_linalg::Matrix;
//!
//! // Two obvious blobs.
//! let data = Matrix::from_rows(&[
//!     &[0.0f32, 0.1][..], &[0.1, 0.0][..],
//!     &[5.0, 5.1][..], &[5.1, 5.0][..],
//! ]).unwrap();
//! let config = KmeansConfig::new(2)
//!     .with_distance(KmeansDistance::Euclidean)
//!     .with_seed(7);
//! let result = kmeans(&data, &config).unwrap();
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_eq!(result.assignments[2], result.assignments[3]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Errors produced by clustering operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusteringError {
    /// More clusters requested than data points available.
    TooFewPoints {
        /// Points available.
        points: usize,
        /// Clusters requested.
        clusters: usize,
    },
    /// `k == 0` or other invalid configuration.
    InvalidConfig {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringError::TooFewPoints { points, clusters } => {
                write!(f, "cannot form {clusters} clusters from {points} points")
            }
            ClusteringError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
        }
    }
}

impl std::error::Error for ClusteringError {}

/// Distance/similarity metric used for cluster assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KmeansDistance {
    /// Assign each point to the centroid with the **highest dot product**.
    ///
    /// This mirrors MEMHD's associative search (Eq. 3) so that clustering
    /// optimizes the same objective inference will use. Lloyd iterations
    /// with a dot objective are not guaranteed monotone, so convergence is
    /// bounded by `max_iters` / assignment fixpoint.
    #[default]
    DotSimilarity,
    /// Standard squared-Euclidean k-means (Lloyd's algorithm; monotone).
    Euclidean,
    /// Cosine similarity (spherical k-means assignment).
    Cosine,
}

impl KmeansDistance {
    /// Score of `point` against `centroid` — **higher is better** for all
    /// variants (Euclidean returns the negated squared distance).
    pub fn score(&self, point: &[f32], centroid: &[f32]) -> f32 {
        match self {
            KmeansDistance::DotSimilarity => hd_linalg::dot(point, centroid),
            KmeansDistance::Euclidean => {
                let d2: f32 = point.iter().zip(centroid).map(|(a, b)| (a - b) * (a - b)).sum();
                -d2
            }
            KmeansDistance::Cosine => {
                let na = hd_linalg::l2_norm(point);
                let nb = hd_linalg::l2_norm(centroid);
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    hd_linalg::dot(point, centroid) / (na * nb)
                }
            }
        }
    }
}

/// Centroid seeding strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KmeansInit {
    /// D²-weighted k-means++ seeding (default).
    #[default]
    KmeansPlusPlus,
    /// Uniform random sample of `k` distinct points.
    Random,
}

/// Configuration for [`kmeans`].
///
/// Construct with [`KmeansConfig::new`] and chain `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansConfig {
    k: usize,
    max_iters: usize,
    distance: KmeansDistance,
    init: KmeansInit,
    seed: u64,
}

impl KmeansConfig {
    /// Creates a configuration for `k` clusters with default settings
    /// (dot-similarity metric, k-means++ init, 50 iterations, seed 0).
    pub fn new(k: usize) -> Self {
        KmeansConfig {
            k,
            max_iters: 50,
            distance: KmeansDistance::default(),
            init: KmeansInit::default(),
            seed: 0,
        }
    }

    /// Sets the iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the assignment metric.
    pub fn with_distance(mut self, distance: KmeansDistance) -> Self {
        self.distance = distance;
        self
    }

    /// Sets the seeding strategy.
    pub fn with_init(mut self, init: KmeansInit) -> Self {
        self.init = init;
        self
    }

    /// Sets the RNG seed (clustering is fully deterministic given a seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The assignment metric in use.
    pub fn distance(&self) -> KmeansDistance {
        self.distance
    }
}

/// Output of [`kmeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// `k × D` centroid matrix (row = centroid).
    pub centroids: Matrix,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Final objective: total squared Euclidean distance to assigned
    /// centroids (reported for every metric as a comparable quantity).
    pub inertia: f64,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether assignments reached a fixpoint before `max_iters`.
    pub converged: bool,
}

impl KmeansResult {
    /// Number of points in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.rows()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| ((x - y) as f64) * ((x - y) as f64)).sum()
}

fn seed_centroids(data: &Matrix, k: usize, init: KmeansInit, rng: &mut StdRng) -> Vec<usize> {
    let n = data.rows();
    match init {
        KmeansInit::Random => {
            // Sample k distinct indices (partial Fisher–Yates).
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        }
        KmeansInit::KmeansPlusPlus => {
            let mut chosen = Vec::with_capacity(k);
            chosen.push(rng.gen_range(0..n));
            let mut dist2: Vec<f64> =
                (0..n).map(|i| squared_euclidean(data.row(i), data.row(chosen[0]))).collect();
            while chosen.len() < k {
                let total: f64 = dist2.iter().sum();
                let next = if total <= 0.0 {
                    // All remaining points coincide with a centroid;
                    // fall back to uniform choice.
                    rng.gen_range(0..n)
                } else {
                    let mut target = rng.gen::<f64>() * total;
                    let mut pick = n - 1;
                    for (i, &d) in dist2.iter().enumerate() {
                        target -= d;
                        if target <= 0.0 {
                            pick = i;
                            break;
                        }
                    }
                    pick
                };
                chosen.push(next);
                for (i, slot) in dist2.iter_mut().enumerate() {
                    let d = squared_euclidean(data.row(i), data.row(next));
                    if d < *slot {
                        *slot = d;
                    }
                }
            }
            chosen
        }
    }
}

/// Runs k-means over the rows of `data`.
///
/// Deterministic for a fixed `(data, config)` pair. Empty clusters are
/// repaired by re-seeding them on the point currently farthest (in squared
/// Euclidean distance) from its assigned centroid.
///
/// # Errors
///
/// Returns [`ClusteringError::InvalidConfig`] if `k == 0` or the data has
/// zero columns, and [`ClusteringError::TooFewPoints`] if `k > data.rows()`.
pub fn kmeans(data: &Matrix, config: &KmeansConfig) -> Result<KmeansResult, ClusteringError> {
    let (n, d) = data.shape();
    if config.k == 0 {
        return Err(ClusteringError::InvalidConfig { reason: "k must be positive".into() });
    }
    if d == 0 {
        return Err(ClusteringError::InvalidConfig {
            reason: "data must have at least one column".into(),
        });
    }
    if n < config.k {
        return Err(ClusteringError::TooFewPoints { points: n, clusters: config.k });
    }

    let mut rng = seeded(derive_seed(config.seed, 0x6b6d_6e73)); // "kmns"
    let seeds = seed_centroids(data, config.k, config.init, &mut rng);
    let mut centroids = Matrix::zeros(config.k, d);
    for (c, &i) in seeds.iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(data.row(i));
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut converged = false;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, assignment) in assignments.iter_mut().enumerate() {
            let point = data.row(i);
            let mut best = 0usize;
            let mut best_score = config.distance.score(point, centroids.row(0));
            for c in 1..config.k {
                let s = config.distance.score(point, centroids.row(c));
                if s > best_score {
                    best_score = s;
                    best = c;
                }
            }
            if *assignment != best {
                *assignment = best;
                changed = true;
            }
        }
        if iter > 0 && !changed {
            converged = true;
            break;
        }

        // Update step: centroid = mean of members.
        let mut sums = Matrix::zeros(config.k, d);
        let mut counts = vec![0usize; config.k];
        for (i, &c) in assignments.iter().enumerate() {
            hd_linalg::axpy(1.0, data.row(i), sums.row_mut(c));
            counts[c] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Empty-cluster repair: steal the point farthest from its
                // centroid.
                let mut worst = 0usize;
                let mut worst_d = -1.0f64;
                for (i, &a) in assignments.iter().enumerate() {
                    let dd = squared_euclidean(data.row(i), centroids.row(a));
                    if dd > worst_d {
                        worst_d = dd;
                        worst = i;
                    }
                }
                centroids.row_mut(c).copy_from_slice(data.row(worst));
                assignments[worst] = c;
            } else {
                let inv = 1.0 / counts[c] as f32;
                let row = sums.row(c).to_vec();
                let dest = centroids.row_mut(c);
                for (dst, s) in dest.iter_mut().zip(row) {
                    *dst = s * inv;
                }
            }
        }
    }

    let inertia: f64 =
        (0..n).map(|i| squared_euclidean(data.row(i), centroids.row(assignments[i]))).sum();

    Ok(KmeansResult { centroids, assignments, inertia, iterations, converged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::Normal;

    fn blobs(per_blob: usize, centers: &[(f32, f32)], noise: f32, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let dist = Normal::new(0.0, noise);
        let mut rows = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per_blob {
                rows.push(vec![cx + dist.sample(&mut rng), cy + dist.sample(&mut rng)]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_clear_blobs_euclidean() {
        let data = blobs(20, &[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], 0.3, 1);
        let cfg = KmeansConfig::new(3).with_distance(KmeansDistance::Euclidean).with_seed(2);
        let r = kmeans(&data, &cfg).unwrap();
        let sizes = r.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert!(sizes.iter().all(|&s| s == 20), "sizes {sizes:?}");
        assert!(r.converged);
    }

    #[test]
    fn dot_similarity_separates_directional_blobs() {
        // Directions matter for dot similarity: put blobs on distinct rays.
        let data = blobs(25, &[(10.0, 0.0), (0.0, 10.0)], 0.5, 3);
        let cfg = KmeansConfig::new(2).with_seed(4);
        let r = kmeans(&data, &cfg).unwrap();
        // First 25 points together, last 25 together.
        let a = r.assignments[0];
        assert!(r.assignments[..25].iter().all(|&x| x == a));
        assert!(r.assignments[25..].iter().all(|&x| x != a));
    }

    #[test]
    fn deterministic_under_seed() {
        let data = blobs(15, &[(0.0, 0.0), (5.0, 5.0)], 1.0, 9);
        let cfg = KmeansConfig::new(2).with_seed(42);
        let r1 = kmeans(&data, &cfg).unwrap();
        let r2 = kmeans(&data, &cfg).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centroids, r2.centroids);
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let data = blobs(1, &[(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)], 0.0, 1);
        let cfg = KmeansConfig::new(3).with_distance(KmeansDistance::Euclidean).with_seed(1);
        let r = kmeans(&data, &cfg).unwrap();
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1]);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn rejects_bad_configs() {
        let data = blobs(2, &[(0.0, 0.0)], 0.1, 1);
        assert!(matches!(
            kmeans(&data, &KmeansConfig::new(0)),
            Err(ClusteringError::InvalidConfig { .. })
        ));
        assert!(matches!(
            kmeans(&data, &KmeansConfig::new(5)),
            Err(ClusteringError::TooFewPoints { points: 2, clusters: 5 })
        ));
    }

    #[test]
    fn duplicate_points_handled() {
        // All points identical: k-means++ falls back to uniform choice and
        // empty-cluster repair keeps things finite.
        let rows = vec![vec![1.0f32, 2.0]; 8];
        let data = Matrix::from_rows(&rows).unwrap();
        let cfg = KmeansConfig::new(2).with_distance(KmeansDistance::Euclidean).with_seed(5);
        let r = kmeans(&data, &cfg).unwrap();
        assert_eq!(r.assignments.len(), 8);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn cosine_metric_scores() {
        let m = KmeansDistance::Cosine;
        assert!((m.score(&[2.0, 0.0], &[5.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(m.score(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(m.score(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn euclidean_score_is_negated_distance() {
        let m = KmeansDistance::Euclidean;
        assert_eq!(m.score(&[0.0, 0.0], &[3.0, 4.0]), -25.0);
    }

    #[test]
    fn random_init_also_works() {
        let data = blobs(20, &[(0.0, 0.0), (10.0, 10.0)], 0.3, 6);
        let cfg = KmeansConfig::new(2)
            .with_distance(KmeansDistance::Euclidean)
            .with_init(KmeansInit::Random)
            .with_seed(8);
        let r = kmeans(&data, &cfg).unwrap();
        let sizes = r.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 20), "sizes {sizes:?}");
    }

    #[test]
    fn iteration_cap_respected() {
        let data = blobs(30, &[(0.0, 0.0), (1.0, 1.0)], 2.0, 7);
        let cfg = KmeansConfig::new(2).with_max_iters(1).with_seed(3);
        let r = kmeans(&data, &cfg).unwrap();
        assert_eq!(r.iterations, 1);
    }
}
