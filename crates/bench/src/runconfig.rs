//! Command-line handling shared by the bench binaries.

/// Sweep scale: quick (default, minutes) or full (paper protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Reduced sweeps and sample budgets; finishes in minutes.
    #[default]
    Quick,
    /// Paper-protocol sweeps: wider grids, more samples, 5-trial averages.
    Full,
}

/// Parsed command-line options for a bench binary.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Sweep scale.
    pub mode: RunMode,
    /// Trials to average over (paper uses 5).
    pub trials: usize,
    /// Base seed for trial derivation.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { mode: RunMode::Quick, trials: 2, seed: 2025 }
    }
}

impl RunConfig {
    /// Parses options from an argument iterator (excluding argv\[0\]).
    ///
    /// Recognized flags: `--quick`, `--full`, `--trials N`, `--seed S`.
    /// Unknown flags are reported in the returned error string.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = RunConfig::default();
        let mut trials_explicit = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => cfg.mode = RunMode::Quick,
                "--full" => {
                    cfg.mode = RunMode::Full;
                    if !trials_explicit {
                        cfg.trials = 5;
                    }
                }
                "--trials" => {
                    let v = it.next().ok_or("--trials needs a value")?;
                    cfg.trials = v.parse().map_err(|e| format!("invalid --trials {v}: {e}"))?;
                    if cfg.trials == 0 {
                        return Err("--trials must be positive".into());
                    }
                    trials_explicit = true;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cfg.seed = v.parse().map_err(|e| format!("invalid --seed {v}: {e}"))?;
                }
                "--help" | "-h" => {
                    return Err("usage: [--quick|--full] [--trials N] [--seed S]".into())
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(cfg)
    }

    /// Parses from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(cfg) => cfg,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunConfig, String> {
        RunConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.mode, RunMode::Quick);
        assert_eq!(cfg.trials, 2);
    }

    #[test]
    fn full_bumps_trials_to_five() {
        let cfg = parse(&["--full"]).unwrap();
        assert_eq!(cfg.mode, RunMode::Full);
        assert_eq!(cfg.trials, 5);
    }

    #[test]
    fn explicit_trials_survive_full() {
        let cfg = parse(&["--trials", "3", "--full"]).unwrap();
        assert_eq!(cfg.trials, 3);
        let cfg = parse(&["--full", "--trials", "3"]).unwrap();
        assert_eq!(cfg.trials, 3);
    }

    #[test]
    fn seed_parsing() {
        let cfg = parse(&["--seed", "42"]).unwrap();
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "zero"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
