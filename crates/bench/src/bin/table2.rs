//! Regenerates **Table II**: computation cycles, arrays, and AM
//! utilization for MNIST/FMNIST and ISOLET on 128×128 IMC arrays.
//!
//! Builds real binary AMs of each structure, maps them with the three
//! strategies (Basic, Partitioning P, MEMHD's fully-utilized mapping), and
//! prints per-mapping cycles / arrays / utilization plus the improvement
//! factors the paper headlines (80× cycles, 71× arrays on MNIST).
//!
//! Usage: `cargo run -p memhd-bench --bin table2`

use hd_linalg::rng::seeded;
use hd_linalg::BitVector;
use hdc::BinaryAm;
use imc_sim::{system_report, AmMapping, ArraySpec, MappingStrategy, SystemReport};
use memhd_bench::table::Table;
use rand::Rng;

/// Builds a random binary AM with `vectors` class vectors spread over `k`
/// classes (contents don't affect cycle/array/utilization accounting).
fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

struct RowSpec {
    label: &'static str,
    dim: usize,
    strategy: MappingStrategy,
    /// MEMHD rows use their own (smaller) D and a fully-utilized AM.
    memhd: bool,
}

fn report(features: usize, k: usize, spec: ArraySpec, row: &RowSpec) -> SystemReport {
    let vectors = if row.memhd { spec.cols() } else { k };
    let am = random_am(k, vectors, row.dim, 1);
    let mapping = AmMapping::new(&am, spec, row.strategy).expect("valid mapping");
    system_report(features, &mapping)
}

fn print_dataset(title: &str, features: usize, k: usize, rows: &[RowSpec], spec: ArraySpec) {
    println!("== {title} (f = {features}, k = {k}, arrays {spec}) ==");
    let mut t = Table::new(&[
        "mapping",
        "AM structure",
        "EM cyc",
        "AM cyc",
        "total cyc",
        "EM arr",
        "AM arr",
        "total arr",
        "AM util",
    ]);
    let mut reports = Vec::new();
    for row in rows {
        let r = report(features, k, spec, row);
        let vectors = if row.memhd { spec.cols() } else { k };
        let p = match row.strategy {
            MappingStrategy::Partitioned { partitions } => partitions,
            MappingStrategy::Basic => 1,
        };
        let structure = format!("{}x{}", row.dim / p, vectors * p);
        t.row(&[
            row.label.to_string(),
            structure,
            r.em_cycles.to_string(),
            r.am_cycles.to_string(),
            r.total_cycles().to_string(),
            r.em_arrays.to_string(),
            r.am_arrays.to_string(),
            r.total_arrays().to_string(),
            format!("{:.2}%", r.am_utilization * 100.0),
        ]);
        reports.push(r);
    }
    t.print();

    let basic = &reports[0];
    let memhd = reports.last().expect("rows non-empty");
    let best_partition_arrays =
        reports[1..reports.len() - 1].iter().map(SystemReport::total_arrays).min();
    println!(
        "Improvement vs Basic: cycles {:.0}x, arrays {:.0}x (vs best partitioning: {:.1}x), \
         utilization {:.2}% -> {:.2}%\n",
        basic.total_cycles() as f64 / memhd.total_cycles() as f64,
        basic.total_arrays() as f64 / memhd.total_arrays() as f64,
        best_partition_arrays.unwrap_or(basic.total_arrays()) as f64 / memhd.total_arrays() as f64,
        basic.am_utilization * 100.0,
        memhd.am_utilization * 100.0,
    );
}

fn main() {
    let spec = ArraySpec::default();
    println!("Table II: computation cycles, arrays and AM utilization (128x128 IMC array)\n");

    print_dataset(
        "(a) MNIST, FMNIST",
        784,
        10,
        &[
            RowSpec { label: "Basic", dim: 10240, strategy: MappingStrategy::Basic, memhd: false },
            RowSpec {
                label: "Partitioning P=5",
                dim: 10240,
                strategy: MappingStrategy::Partitioned { partitions: 5 },
                memhd: false,
            },
            RowSpec {
                label: "Partitioning P=10",
                dim: 10240,
                strategy: MappingStrategy::Partitioned { partitions: 10 },
                memhd: false,
            },
            RowSpec {
                label: "MEMHD 128x128",
                dim: 128,
                strategy: MappingStrategy::Basic,
                memhd: true,
            },
        ],
        spec,
    );

    print_dataset(
        "(b) ISOLET",
        617,
        26,
        &[
            RowSpec { label: "Basic", dim: 10240, strategy: MappingStrategy::Basic, memhd: false },
            RowSpec {
                label: "Partitioning P=2",
                dim: 10240,
                strategy: MappingStrategy::Partitioned { partitions: 2 },
                memhd: false,
            },
            RowSpec {
                label: "Partitioning P=4",
                dim: 10240,
                strategy: MappingStrategy::Partitioned { partitions: 4 },
                memhd: false,
            },
            RowSpec {
                label: "MEMHD 512x128",
                dim: 512,
                strategy: MappingStrategy::Basic,
                memhd: true,
            },
        ],
        spec,
    );
}
