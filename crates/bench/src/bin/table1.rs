//! Regenerates **Table I**: memory requirements of baseline HDC models.
//!
//! Prints the symbolic formulas instantiated for each dataset's feature
//! width at representative dimensionalities, matching the paper's setup:
//! `L = 256`, `N = 64`.
//!
//! Usage: `cargo run -p memhd-bench --bin table1`

use hd_baselines::{baseline_memory, BaselineKind};
use memhd_bench::table::Table;

const LEVELS: usize = 256;
const SEARCHD_N: usize = 64;

fn main() {
    println!("Table I: memory requirements of baseline HDC models");
    println!("(L = {LEVELS} levels, SearcHD N = {SEARCHD_N}; sizes in KB)\n");

    for (dataset, f, k) in [("MNIST/FMNIST", 784usize, 10usize), ("ISOLET", 617, 26)] {
        println!("== {dataset} (f = {f}, k = {k}) ==");
        let mut t = Table::new(&[
            "model",
            "encoding",
            "D",
            "EM formula",
            "AM formula",
            "EM KB",
            "AM KB",
            "total KB",
        ]);
        let entries: Vec<(BaselineKind, usize, &str, String, String)> = vec![
            (
                BaselineKind::SearcHd { n: SEARCHD_N },
                10240,
                "ID-Level",
                "(f+L)*D".into(),
                format!("k*D*{SEARCHD_N}"),
            ),
            (BaselineKind::QuantHd, 10240, "ID-Level", "(f+L)*D".into(), "k*D".into()),
            (BaselineKind::LeHdc, 10240, "ID-Level", "(f+L)*D".into(), "k*D".into()),
            (BaselineKind::BasicHdc, 10240, "Projection", "f*D".into(), "k*D".into()),
            (BaselineKind::Memhd { columns: 128 }, 128, "Projection", "f*D".into(), "C*D".into()),
        ];
        for (kind, dim, encoding, em_formula, am_formula) in entries {
            let r = baseline_memory(kind, f, LEVELS, dim, k);
            t.row(&[
                kind.name().to_string(),
                encoding.to_string(),
                dim.to_string(),
                em_formula,
                am_formula,
                format!("{:.1}", r.em_kb()),
                format!("{:.1}", r.am_kb()),
                format!("{:.1}", r.total_kb()),
            ]);
        }
        t.print();
        println!();
    }

    println!(
        "Note: only BasicHDC and MEMHD use MVM-compatible projection encoding,\n\
         so only they map the encoding module directly onto IMC arrays."
    );
}
