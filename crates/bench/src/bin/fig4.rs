//! Regenerates **Fig. 4**: MEMHD accuracy heatmap over hypervector
//! dimensions `D` and memory columns `C`.
//!
//! For each dataset the encoding is computed once per `D` and the column
//! sweep runs in parallel, mirroring how the AM shape can be retargeted to
//! different arrays without re-encoding. The paper's observations to look
//! for: MNIST/FMNIST accuracy grows with both `D` and `C`; ISOLET (few
//! samples per class) peaks at moderate column counts and *degrades* when
//! columns over-fragment the classes.
//!
//! Usage: `cargo run --release -p memhd-bench --bin fig4 [--quick|--full]`

use hd_linalg::rng::derive_seed;
use hd_linalg::stats::Welford;
use hdc::{encode_dataset, RandomProjectionEncoder};
use memhd::{MemhdConfig, MemhdModel};
use memhd_bench::datasets::Corpus;
use memhd_bench::runconfig::{RunConfig, RunMode};
use memhd_bench::table::Table;

fn main() {
    let rc = RunConfig::from_env();
    let (dims, cols, epochs) = match rc.mode {
        RunMode::Quick => (vec![64usize, 128, 256], vec![64usize, 128, 256], 8usize),
        RunMode::Full => (vec![64, 128, 256, 512, 1024], vec![64, 128, 256, 512, 1024], 25),
    };

    println!(
        "Fig. 4: MEMHD accuracy heatmap (D x C); mode {:?}, {} trial(s), seed {}\n",
        rc.mode, rc.trials, rc.seed
    );

    for corpus in Corpus::ALL {
        let k = corpus.num_classes();
        // ISOLET's ~240-sample classes cannot seed very wide AMs; the paper
        // accordingly explores it at modest column counts.
        let corpus_cols: Vec<usize> = match corpus {
            Corpus::Isolet => cols.iter().copied().filter(|&c| c <= 512).collect(),
            _ => cols.clone(),
        };

        // cell[(di, ci)] accumulates over trials.
        let mut cells: Vec<Vec<Welford>> =
            vec![vec![Welford::new(); corpus_cols.len()]; dims.len()];

        for trial in 0..rc.trials {
            let seed = derive_seed(rc.seed, trial as u64);
            let ds = corpus.generate(rc.mode, seed);

            for (di, &dim) in dims.iter().enumerate() {
                let encoder = RandomProjectionEncoder::new(
                    ds.feature_dim(),
                    dim,
                    derive_seed(seed, 0x656e63),
                );
                let train = encode_dataset(&encoder, &ds.train_features).expect("encode train");
                let test = encode_dataset(&encoder, &ds.test_features).expect("encode test");

                // Sweep columns in parallel over one shared encoding.
                let accs: Vec<(usize, f64)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = corpus_cols
                        .iter()
                        .enumerate()
                        .map(|(ci, &c)| {
                            let encoder = encoder.clone();
                            let train = &train;
                            let test = &test;
                            let ds = &ds;
                            scope.spawn(move || {
                                let cfg = MemhdConfig::new(dim, c, k)
                                    .expect("valid shape")
                                    .with_epochs(epochs)
                                    .with_seed(seed);
                                let model =
                                    MemhdModel::fit_encoded(&cfg, encoder, train, &ds.train_labels)
                                        .expect("fit");
                                let acc = model
                                    .evaluate_encoded(&test.bin, &ds.test_labels)
                                    .expect("eval");
                                (ci, acc * 100.0)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("sweep thread")).collect()
                });
                for (ci, acc) in accs {
                    cells[di][ci].push(acc);
                }
            }
        }

        println!("== {} (accuracy %, rows = D, cols = C) ==", corpus.name());
        let mut headers: Vec<String> = vec!["D \\ C".into()];
        headers.extend(corpus_cols.iter().map(|c| c.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for (di, &dim) in dims.iter().enumerate() {
            let mut row = vec![dim.to_string()];
            row.extend(cells[di].iter().map(|w| format!("{:.2}", w.mean())));
            t.row(&row);
        }
        t.print();

        // Shape check the paper highlights for ISOLET: the best column
        // count is not the largest one.
        if corpus == Corpus::Isolet {
            let last_d = dims.len() - 1;
            let best_ci = (0..corpus_cols.len())
                .max_by(|&a, &b| cells[last_d][a].mean().total_cmp(&cells[last_d][b].mean()))
                .expect("non-empty");
            println!(
                "ISOLET peak at C = {} for D = {} (paper: peak at 128-256 columns)",
                corpus_cols[best_ci], dims[last_d]
            );
        }
        println!();
    }
}
