//! Regenerates **Fig. 3**: accuracy vs memory requirement (KB) for MEMHD
//! and the four baselines on the three (synthetic stand-in) datasets.
//!
//! MEMHD sweeps square AM sizes (`DxC`) for MNIST/FMNIST and fixed-128-
//! column sizes for ISOLET; baselines sweep dimensionality. Each point is
//! averaged over trials (5 with `--full`, matching the paper's protocol).
//!
//! Usage: `cargo run --release -p memhd-bench --bin fig3 [--quick|--full]`

use hd_baselines::{
    BasicHdc, HdcClassifier, LeHdc, LeHdcConfig, QuantHd, QuantHdConfig, SearcHd, SearcHdConfig,
};
use hd_linalg::rng::derive_seed;
use hd_linalg::stats::Welford;
use hdc::{encode_dataset, IdLevelEncoder};
use memhd::{MemhdConfig, MemhdModel};
use memhd_bench::datasets::Corpus;
use memhd_bench::runconfig::{RunConfig, RunMode};
use memhd_bench::table::Table;

const LEVELS: usize = 64; // ID-Level quantization levels for baselines
const SEARCHD_N: usize = 16; // scaled from the paper's 64 to keep runtime sane

struct Point {
    model: String,
    config: String,
    memory_kb: f64,
    accuracy: Welford,
}

fn main() {
    let rc = RunConfig::from_env();
    let (memhd_square, isolet_dims, basic_dims, idlevel_dims, epochs) = match rc.mode {
        RunMode::Quick => (
            vec![64usize, 128, 256],
            vec![128usize, 256, 512],
            vec![256usize, 512, 2048],
            vec![256usize, 512, 1024],
            10usize,
        ),
        RunMode::Full => (
            vec![64, 128, 256, 512, 1024],
            vec![128, 256, 512, 1024],
            vec![256, 512, 2048, 10240],
            vec![256, 512, 1024, 2048],
            30,
        ),
    };

    println!(
        "Fig. 3: accuracy vs memory (KB); mode {:?}, {} trial(s), seed {}\n",
        rc.mode, rc.trials, rc.seed
    );

    for corpus in Corpus::ALL {
        let k = corpus.num_classes();
        let mut points: Vec<Point> = Vec::new();

        for trial in 0..rc.trials {
            let seed = derive_seed(rc.seed, trial as u64);
            let ds = corpus.generate(rc.mode, seed);
            let f = ds.feature_dim();
            let mut idx = 0usize;
            let mut push =
                |points: &mut Vec<Point>, model: &str, config: String, kb: f64, acc: f64| {
                    if trial == 0 {
                        points.push(Point {
                            model: model.into(),
                            config,
                            memory_kb: kb,
                            accuracy: Welford::new(),
                        });
                    }
                    points[idx].accuracy.push(acc);
                    idx += 1;
                };

            // --- MEMHD sweep ---
            let memhd_shapes: Vec<(usize, usize)> = match corpus {
                Corpus::Isolet => isolet_dims.iter().map(|&d| (d, 128)).collect(),
                _ => memhd_square.iter().map(|&d| (d, d)).collect(),
            };
            for &(dim, cols) in &memhd_shapes {
                let cfg = MemhdConfig::new(dim, cols, k)
                    .expect("valid shape")
                    .with_epochs(epochs)
                    .with_seed(seed);
                let model =
                    MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
                let acc = model.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
                push(
                    &mut points,
                    "MEMHD",
                    format!("{dim}x{cols}"),
                    model.memory_report().total_kb(),
                    acc * 100.0,
                );
            }

            // --- BasicHDC sweep (projection encoding) ---
            for &dim in &basic_dims {
                let model =
                    BasicHdc::fit(dim, &ds.train_features, &ds.train_labels, k, seed).expect("fit");
                let acc = model.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
                push(
                    &mut points,
                    "BasicHDC",
                    format!("{dim}D"),
                    model.memory_report().total_kb(),
                    acc * 100.0,
                );
            }

            // --- ID-Level baselines (share one encoder + encoding per D) ---
            for &dim in &idlevel_dims {
                let encoder = IdLevelEncoder::new(f, dim, LEVELS, seed);
                let train = encode_dataset(&encoder, &ds.train_features).expect("encode");

                let q_cfg =
                    QuantHdConfig { levels: LEVELS, epochs, seed, ..QuantHdConfig::new(dim) };
                let quant =
                    QuantHd::fit_encoded(&q_cfg, encoder.clone(), &train, &ds.train_labels, k)
                        .expect("fit");
                let acc = quant.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
                push(
                    &mut points,
                    "QuantHD",
                    format!("{dim}D"),
                    quant.memory_report().total_kb(),
                    acc * 100.0,
                );

                let l_cfg = LeHdcConfig { levels: LEVELS, epochs, seed, ..LeHdcConfig::new(dim) };
                let lehdc =
                    LeHdc::fit_encoded(&l_cfg, encoder.clone(), &train, &ds.train_labels, k)
                        .expect("fit");
                let acc = lehdc.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
                push(
                    &mut points,
                    "LeHDC",
                    format!("{dim}D"),
                    lehdc.memory_report().total_kb(),
                    acc * 100.0,
                );

                let s_cfg = SearcHdConfig {
                    levels: LEVELS,
                    models_per_class: SEARCHD_N,
                    epochs: epochs.min(10),
                    seed,
                    ..SearcHdConfig::new(dim)
                };
                let searchd = SearcHd::fit_encoded(&s_cfg, encoder, &train, &ds.train_labels, k)
                    .expect("fit");
                let acc = searchd.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
                push(
                    &mut points,
                    "SearcHD",
                    format!("{dim}D N={SEARCHD_N}"),
                    searchd.memory_report().total_kb(),
                    acc * 100.0,
                );
            }
        }

        println!("== {} ==", corpus.name());
        let mut t = Table::new(&["model", "config", "memory KB", "accuracy %", "±sd"]);
        for p in &points {
            t.row(&[
                p.model.clone(),
                p.config.clone(),
                format!("{:.1}", p.memory_kb),
                format!("{:.2}", p.accuracy.mean()),
                format!("{:.2}", p.accuracy.sample_std_dev()),
            ]);
        }
        t.print();

        // Headline comparison: best MEMHD vs best baseline at >= its memory.
        let best_memhd = points
            .iter()
            .filter(|p| p.model == "MEMHD")
            .max_by(|a, b| a.accuracy.mean().total_cmp(&b.accuracy.mean()));
        let best_baseline = points
            .iter()
            .filter(|p| p.model != "MEMHD")
            .max_by(|a, b| a.accuracy.mean().total_cmp(&b.accuracy.mean()));
        if let (Some(m), Some(b)) = (best_memhd, best_baseline) {
            println!(
                "best MEMHD {} : {:.2}% at {:.1} KB  |  best baseline {} {} : {:.2}% at {:.1} KB \
                 ({:.1}x memory ratio)\n",
                m.config,
                m.accuracy.mean(),
                m.memory_kb,
                b.model,
                b.config,
                b.accuracy.mean(),
                b.memory_kb,
                b.memory_kb / m.memory_kb
            );
        }
    }
}
