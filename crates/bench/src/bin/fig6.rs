//! Regenerates **Fig. 6**: accuracy as a function of the initial cluster
//! ratio `R` (0.1 … 1.0).
//!
//! The paper's observations: `R` barely matters for wide AMs (512x512),
//! matters at narrow ones (512x64) with an optimum around 0.8–0.9, and
//! ISOLET prefers `R = 1.0`.
//!
//! Usage: `cargo run --release -p memhd-bench --bin fig6 [--quick|--full]`

use hd_linalg::rng::derive_seed;
use hd_linalg::stats::Welford;
use hdc::{encode_dataset, RandomProjectionEncoder};
use memhd::{MemhdConfig, MemhdModel};
use memhd_bench::datasets::Corpus;
use memhd_bench::runconfig::{RunConfig, RunMode};
use memhd_bench::table::Table;

fn main() {
    let rc = RunConfig::from_env();
    // (corpus, D, list of C) — paper: FMNIST and ISOLET at 512x512 / 512x64.
    type Scenario = (Corpus, usize, Vec<usize>);
    let (scenarios, ratios, epochs): (Vec<Scenario>, Vec<f32>, usize) = match rc.mode {
        RunMode::Quick => (
            vec![(Corpus::Fmnist, 256, vec![128, 64]), (Corpus::Isolet, 256, vec![128, 64])],
            vec![0.2, 0.4, 0.6, 0.8, 1.0],
            8,
        ),
        RunMode::Full => (
            vec![(Corpus::Fmnist, 512, vec![512, 64]), (Corpus::Isolet, 512, vec![512, 64])],
            (1..=10).map(|i| i as f32 / 10.0).collect(),
            25,
        ),
    };

    println!(
        "Fig. 6: accuracy vs initial cluster ratio R; mode {:?}, {} trial(s)\n",
        rc.mode, rc.trials
    );

    for (corpus, dim, col_list) in scenarios {
        let k = corpus.num_classes();
        for &cols in &col_list {
            let mut series: Vec<Welford> = vec![Welford::new(); ratios.len()];

            for trial in 0..rc.trials {
                let seed = derive_seed(rc.seed, trial as u64);
                let ds = corpus.generate(rc.mode, seed);
                let encoder = RandomProjectionEncoder::new(
                    ds.feature_dim(),
                    dim,
                    derive_seed(seed, 0x656e63),
                );
                let train = encode_dataset(&encoder, &ds.train_features).expect("encode train");
                let test = encode_dataset(&encoder, &ds.test_features).expect("encode test");

                // Sweep R in parallel over the shared encoding.
                let accs: Vec<(usize, f64)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = ratios
                        .iter()
                        .enumerate()
                        .map(|(ri, &r)| {
                            let encoder = encoder.clone();
                            let train = &train;
                            let test = &test;
                            let ds = &ds;
                            scope.spawn(move || {
                                let cfg = MemhdConfig::new(dim, cols, k)
                                    .expect("valid shape")
                                    .with_initial_cluster_ratio(r)
                                    .expect("valid ratio")
                                    .with_epochs(epochs)
                                    .with_seed(seed);
                                let model =
                                    MemhdModel::fit_encoded(&cfg, encoder, train, &ds.train_labels)
                                        .expect("fit");
                                let acc = model
                                    .evaluate_encoded(&test.bin, &ds.test_labels)
                                    .expect("eval");
                                (ri, acc * 100.0)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("sweep thread")).collect()
                });
                for (ri, acc) in accs {
                    series[ri].push(acc);
                }
            }

            println!("== {} {}x{} ==", corpus.name(), dim, cols);
            let mut t = Table::new(&["R", "accuracy %", "±sd"]);
            for (ri, &r) in ratios.iter().enumerate() {
                t.row(&[
                    format!("{r:.1}"),
                    format!("{:.2}", series[ri].mean()),
                    format!("{:.2}", series[ri].sample_std_dev()),
                ]);
            }
            t.print();
            let best = (0..ratios.len())
                .max_by(|&a, &b| series[a].mean().total_cmp(&series[b].mean()))
                .expect("non-empty");
            let spread = series.iter().map(|w| w.mean()).fold(f64::NEG_INFINITY, f64::max)
                - series.iter().map(|w| w.mean()).fold(f64::INFINITY, f64::min);
            println!("best R = {:.1}; spread across R = {spread:.2}%\n", ratios[best]);
        }
    }
}
