//! Regenerates **Fig. 7**: normalized AM energy consumption and cycles
//! against array usage, for the FMNIST-equivalent-accuracy configurations.
//!
//! The paper compares, at matched FMNIST accuracy: BasicHDC 10240×10 (and
//! its P=10 partitioning), SearcHD 8000×10 (and P=10), QuantHD 1600×10
//! (and P=10), LeHDC 400×10 (and P=4), and MEMHD 128×128. All models use
//! MVM-based associative search, so their AMs map with the same machinery.
//!
//! Usage: `cargo run -p memhd-bench --bin fig7`

use hd_linalg::rng::seeded;
use hd_linalg::BitVector;
use hdc::BinaryAm;
use imc_sim::{AmMapping, ArraySpec, EnergyModel, MappingStrategy};
use memhd_bench::table::Table;
use rand::Rng;

fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

struct Config {
    label: &'static str,
    dim: usize,
    vectors: usize,
    k: usize,
    strategy: MappingStrategy,
}

fn main() {
    let spec = ArraySpec::default();
    let energy = EnergyModel::default();
    // SearcHD's multi-model AM is k*N columns wide; the paper's Fig. 7
    // labels the *logical* class-vector count (10) because its N models
    // are searched as one MVM; we model the k-column equivalent the figure
    // reports for the AM structure, i.e. the quantized class vectors that
    // participate in one search cycle group.
    let configs = [
        Config {
            label: "BasicHDC 10240x10",
            dim: 10240,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Basic,
        },
        Config {
            label: "BasicHDC 1024x100 (P=10)",
            dim: 10240,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Partitioned { partitions: 10 },
        },
        Config {
            label: "SearcHD 8000x10",
            dim: 8000,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Basic,
        },
        Config {
            label: "SearcHD 800x100 (P=10)",
            dim: 8000,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Partitioned { partitions: 10 },
        },
        Config {
            label: "QuantHD 1600x10",
            dim: 1600,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Basic,
        },
        Config {
            label: "QuantHD 160x100 (P=10)",
            dim: 1600,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Partitioned { partitions: 10 },
        },
        Config {
            label: "LeHDC 400x10",
            dim: 400,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Basic,
        },
        Config {
            label: "LeHDC 100x40 (P=4)",
            dim: 400,
            vectors: 10,
            k: 10,
            strategy: MappingStrategy::Partitioned { partitions: 4 },
        },
        Config {
            label: "MEMHD 128x128",
            dim: 128,
            vectors: 128,
            k: 10,
            strategy: MappingStrategy::Basic,
        },
    ];

    println!(
        "Fig. 7: normalized AM energy and cycles vs array usage (FMNIST-equivalent accuracy)\n"
    );
    let mut rows = Vec::new();
    for c in &configs {
        let am = random_am(c.k, c.vectors, c.dim, 7);
        let mapping = AmMapping::new(&am, spec, c.strategy).expect("valid mapping");
        let stats = mapping.stats();
        let e = mapping.inference_energy_pj(&energy);
        rows.push((c.label, stats.arrays, stats.cycles, e));
    }
    let min_energy = rows.iter().map(|r| r.3).fold(f64::INFINITY, f64::min);

    let mut t = Table::new(&["config", "AM arrays", "AM cycles", "energy pJ", "energy (norm)"]);
    for (label, arrays, cycles, e) in &rows {
        t.row(&[
            label.to_string(),
            arrays.to_string(),
            cycles.to_string(),
            format!("{e:.1}"),
            format!("{:.1}", e / min_energy),
        ]);
    }
    t.print();

    let basic = rows[0].3;
    let lehdc = rows[6].3;
    let memhd = rows.last().expect("non-empty").3;
    println!(
        "\nMEMHD vs BasicHDC energy: {:.0}x more efficient; vs LeHDC: {:.0}x\n\
         (paper: 80x and 4x). Partitioned variants keep the same energy as\n\
         their unpartitioned bases — fewer arrays, proportionally more cycles.",
        basic / memhd,
        lehdc / memhd
    );
}
