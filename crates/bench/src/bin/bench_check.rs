//! Perf-regression gate over the committed `BENCH_search.json` baseline.
//!
//! Re-runs (or reads) the criterion ids recorded in the baseline file and
//! exits non-zero if any of them regressed by more than the threshold —
//! run it manually after kernel changes, on hardware and a kernel backend
//! comparable to the baseline's recorded environment (CI only compiles
//! benches; shared runners are too noisy to gate on wall-clock).
//!
//! ```text
//! # One-shot: re-run the baseline benches and compare.
//! cargo run --release -p memhd_bench --bin bench_check -- --run
//!
//! # Two-step: benchmark into a file, then compare.
//! CRITERION_JSON=/tmp/new.json cargo bench -p memhd_bench --bench associative_search
//! CRITERION_JSON=/tmp/new.json cargo bench -p memhd_bench --bench serve_throughput
//! cargo run -p memhd_bench --bin bench_check -- --current /tmp/new.json
//!
//! # CI smoke: run the pipeline end to end, fail only if it breaks
//! # (ids missing / benches erroring), never on noisy-runner ratios.
//! cargo run --release -p memhd_bench --bin bench_check -- --smoke
//! ```
//!
//! Flags: `--baseline <path>` (default `BENCH_search.json`),
//! `--current <path>` (a `CRITERION_JSON` lines file), `--run` (invoke
//! `cargo bench` itself; repeat `--bench <name>` to override which
//! benches, default `associative_search` + `serve_throughput` +
//! `wire_throughput` + `topk_search` + `fault_tolerance` — the last records deterministic
//! accuracy percentages, not times, so its ratios are always 1.00x),
//! `--smoke` (CI mode: like `--run` but only id presence is checked),
//! `--threshold <pct>` (default 10). Numbers are only comparable
//! like-for-like: same machine class and same kernel backend
//! (`HD_LINALG_BACKEND`) as the baseline's recorded environment.

use std::collections::BTreeMap;
use std::process::{Command, ExitCode};

/// Extracts every `"id": "...", ... "ns_per_iter": <num>` pair from a
/// JSON document or a criterion-shim JSON-lines file. A full JSON parser
/// is overkill for the two fixed schemas this tool reads.
fn parse_results(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(idx) = rest.find("\"id\"") {
        rest = &rest[idx + 4..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else { break };
        let id = rest[open + 1..open + 1 + close].to_string();
        rest = &rest[open + 1 + close..];
        let Some(nidx) = rest.find("\"ns_per_iter\"") else { continue };
        // Pair only within this record: an id whose record lacks a
        // ns_per_iter (e.g. a truncated line) must not steal the next
        // record's timing.
        if let Some(next_id) = rest.find("\"id\"") {
            if next_id < nidx {
                continue;
            }
        }
        let after = &rest[nidx + 13..];
        let num: String = after
            .chars()
            .skip_while(|c| *c == ':' || c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == 'e' || *c == '-' || *c == '+')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            // First occurrence wins: the baseline file's primary `results`
            // section precedes any archived (e.g. pre-SIMD) sections.
            out.entry(id).or_insert(v);
        }
        rest = after;
    }
    out
}

fn read_results(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let results = parse_results(&text);
    if results.is_empty() {
        return Err(format!("{path}: no (id, ns_per_iter) records found"));
    }
    Ok(results)
}

/// The backend name recorded in a baseline's `environment.kernel_backend`
/// field (first word of the value, e.g. `"avx512 (auto-detected; ...)"`
/// → `avx512`), if present.
fn baseline_backend(path: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let idx = text.find("\"kernel_backend\"")?;
    let rest = &text[idx + 16..];
    let open = rest.find('"')?;
    let close = rest[open + 1..].find('"')?;
    let value = &rest[open + 1..open + 1 + close];
    Some(value.split_whitespace().next()?.to_string())
}

/// Runs the named benches with `CRITERION_JSON` pointed at one shared
/// scratch file and returns the merged parsed results.
fn run_benches(benches: &[String]) -> Result<BTreeMap<String, f64>, String> {
    let out_path = std::env::temp_dir().join(format!("bench_check_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out_path);
    for bench in benches {
        eprintln!("bench_check: running `cargo bench -p memhd_bench --bench {bench}` ...");
        let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
            .args(["bench", "-p", "memhd_bench", "--bench", bench])
            .env("CRITERION_JSON", &out_path)
            .status()
            .map_err(|e| format!("failed to spawn cargo bench: {e}"))?;
        if !status.success() {
            return Err(format!("cargo bench --bench {bench} exited with {status}"));
        }
    }
    let results = read_results(out_path.to_str().expect("utf-8 temp path"));
    let _ = std::fs::remove_file(&out_path);
    results
}

fn usage() -> String {
    "usage: bench_check [--baseline <json>] [--current <json> | --run | --smoke] \
     [--bench <name>]... [--threshold <pct>] [--allow-backend-mismatch]"
        .to_string()
}

fn main() -> ExitCode {
    let mut baseline_path = "BENCH_search.json".to_string();
    let mut current_path: Option<String> = None;
    let mut benches: Vec<String> = Vec::new();
    let mut threshold = 10.0f64;
    let mut run = false;
    let mut smoke = false;
    let mut allow_backend_mismatch = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let r = match a.as_str() {
            "--baseline" => take("--baseline").map(|v| baseline_path = v),
            "--current" => take("--current").map(|v| current_path = Some(v)),
            "--bench" => take("--bench").map(|v| benches.push(v)),
            "--threshold" => take("--threshold").and_then(|v| {
                v.parse::<f64>().map(|t| threshold = t).map_err(|e| format!("--threshold: {e}"))
            }),
            "--run" => {
                run = true;
                Ok(())
            }
            "--smoke" => {
                // CI mode: run the full bench pipeline and verify it
                // produces results, but never gate on wall-clock (shared
                // runners are too noisy) or on the recorded backend.
                smoke = true;
                run = true;
                Ok(())
            }
            "--allow-backend-mismatch" => {
                allow_backend_mismatch = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument `{other}`\n{}", usage())),
        };
        if let Err(e) = r {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    }

    let benches_explicit = !benches.is_empty();
    if benches.is_empty() {
        benches = vec![
            "associative_search".to_string(),
            "serve_throughput".to_string(),
            "wire_throughput".to_string(),
            "topk_search".to_string(),
            "fault_tolerance".to_string(),
        ];
    }

    let mut baseline = match read_results(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    // An explicit --bench subset scopes the gate to the ids those benches
    // produce (criterion ids are `<group>/...` with groups prefixed by
    // the bench name), so running one bench does not report the other
    // bench's baseline ids as MISSING.
    if benches_explicit {
        baseline.retain(|id, _| benches.iter().any(|b| id.starts_with(b.as_str())));
        if baseline.is_empty() {
            eprintln!("bench_check: no baseline ids match the selected --bench set");
            return ExitCode::from(2);
        }
    }

    // Numbers are only comparable like-for-like: refuse to diff against a
    // baseline recorded on a different kernel backend (an AVX2-only or
    // aarch64 host would otherwise see nothing but false REGRESSED rows).
    let active = hd_linalg::kernel::active().name();
    if let Some(recorded) = baseline_backend(&baseline_path) {
        if recorded != active && !allow_backend_mismatch && !smoke {
            eprintln!(
                "bench_check: baseline was recorded on the `{recorded}` kernel backend but \
                 this host resolves `{active}` — numbers are not comparable. Re-record the \
                 baseline on this host, force the backend with HD_LINALG_BACKEND={recorded}, \
                 or pass --allow-backend-mismatch to compare anyway."
            );
            return ExitCode::from(2);
        }
    }
    let current = match (run, current_path) {
        (true, _) => run_benches(&benches),
        (false, Some(p)) => read_results(&p),
        (false, None) => Err(format!("need --current <json>, --run, or --smoke\n{}", usage())),
    };
    let current = match current {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut missing = 0usize;
    println!("{:<52} {:>12} {:>12} {:>8}", "id", "baseline", "current", "ratio");
    for (id, &base) in &baseline {
        match current.get(id) {
            Some(&now) => {
                let ratio = now / base;
                let flag = if ratio > 1.0 + threshold / 100.0 {
                    regressions += 1;
                    "  REGRESSED"
                } else if ratio < 1.0 - threshold / 100.0 {
                    "  improved"
                } else {
                    ""
                };
                println!("{id:<52} {base:>10.1}ns {now:>10.1}ns {ratio:>7.2}x{flag}");
            }
            None => {
                missing += 1;
                println!("{id:<52} {base:>10.1}ns {:>12} {:>8}", "-", "MISSING");
            }
        }
    }

    if smoke {
        // The pipeline ran and produced results; wall-clock ratios on a
        // shared runner are informational only. Missing ids still fail:
        // they mean a bench or the baseline file is broken.
        if missing > 0 {
            eprintln!("bench_check: {missing} baseline id(s) missing from the smoke run");
            return ExitCode::FAILURE;
        }
        println!(
            "bench_check: smoke check passed ({} ids produced; ratios not gated)",
            baseline.len()
        );
        return ExitCode::SUCCESS;
    }
    if missing > 0 {
        eprintln!("bench_check: {missing} baseline id(s) missing from the current run");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!("bench_check: {regressions} regression(s) beyond {threshold}%");
        return ExitCode::FAILURE;
    }
    println!("bench_check: all {} ids within {threshold}% of baseline", baseline.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_results;

    #[test]
    fn parses_baseline_schema() {
        let doc = r#"{
            "results": [
                { "id": "a/b", "ns_per_iter": 565.1 },
                { "id": "c/d/10", "ns_per_iter": 2443287.9 }
            ]
        }"#;
        let r = parse_results(doc);
        assert_eq!(r.len(), 2);
        assert_eq!(r["a/b"], 565.1);
        assert_eq!(r["c/d/10"], 2443287.9);
    }

    #[test]
    fn parses_criterion_lines_schema() {
        let doc = "{\"id\": \"x/y\", \"ns_per_iter\": 12.5, \"samples\": 10}\n\
                   {\"id\": \"x/z\", \"ns_per_iter\": 1e3, \"samples\": 10}\n";
        let r = parse_results(doc);
        assert_eq!(r["x/y"], 12.5);
        assert_eq!(r["x/z"], 1000.0);
    }

    #[test]
    fn tolerates_garbage() {
        assert!(parse_results("not json at all").is_empty());
        assert!(parse_results("{\"id\": \"trunc").is_empty());
    }

    #[test]
    fn id_without_timing_does_not_steal_next_record() {
        let doc = "{\"id\": \"broken\"}\n{\"id\": \"ok\", \"ns_per_iter\": 7.0}\n";
        let r = parse_results(doc);
        assert_eq!(r.len(), 1);
        assert_eq!(r["ok"], 7.0);
        assert!(!r.contains_key("broken"));
    }
}
