//! Ablation benches for the design choices DESIGN.md calls out, plus an
//! extension experiment the paper motivates but does not measure: accuracy
//! under IMC cell faults.
//!
//! Sweeps:
//! 1. **Allocation rounds** — how much does batching the §III-A-2
//!    validate-allocate-recluster loop matter?
//! 2. **Learning rate** — the paper prescribes 0.01–0.1; where does this
//!    pipeline sit?
//! 3. **Initial cluster ratio extremes** vs the default 0.8 (cheap echo of
//!    Fig. 6).
//! 4. **Bit-error-rate robustness** — MEMHD 128x128 vs BasicHDC 1024D
//!    accuracy as programmed cells flip, exercising the HDC noise-
//!    robustness claim from the paper's introduction on mapped arrays.
//!
//! Usage: `cargo run --release -p memhd-bench --bin ablation [--quick|--full]`

use hd_baselines::BasicHdc;
use hd_linalg::rng::derive_seed;
use hd_linalg::stats::Welford;
use hdc::{Encoder, RandomProjectionEncoder};
use imc_sim::{AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy};
use memhd::{MemhdConfig, MemhdModel};
use memhd_bench::datasets::Corpus;
use memhd_bench::runconfig::{RunConfig, RunMode};
use memhd_bench::table::Table;

fn main() {
    let rc = RunConfig::from_env();
    let epochs = match rc.mode {
        RunMode::Quick => 8,
        RunMode::Full => 25,
    };
    println!("Ablations; mode {:?}, {} trial(s), seed {}\n", rc.mode, rc.trials, rc.seed);

    // Shared per-trial setup: FMNIST-like data encoded at D=128.
    let corpus = Corpus::Fmnist;
    let k = corpus.num_classes();

    // --- 1. allocation rounds ---
    let mut t = Table::new(&["allocation rounds", "accuracy %", "±sd"]);
    for rounds in [1usize, 2, 4, 8] {
        let mut w = Welford::new();
        for trial in 0..rc.trials {
            let seed = derive_seed(rc.seed, trial as u64);
            let ds = corpus.generate(rc.mode, seed);
            let cfg = MemhdConfig::new(128, 128, k)
                .expect("config")
                .with_allocation_rounds(rounds)
                .expect("rounds")
                .with_initial_cluster_ratio(0.5)
                .expect("ratio")
                .with_epochs(epochs)
                .with_seed(seed);
            let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
            w.push(model.evaluate(&ds.test_features, &ds.test_labels).expect("eval") * 100.0);
        }
        t.row(&[
            rounds.to_string(),
            format!("{:.2}", w.mean()),
            format!("{:.2}", w.sample_std_dev()),
        ]);
    }
    println!("1) allocation rounds (R = 0.5 so half the columns go through allocation):");
    t.print();

    // --- 2. learning rate ---
    let mut t = Table::new(&["learning rate", "accuracy %", "±sd"]);
    for lr in [0.002f32, 0.01, 0.05, 0.1] {
        let mut w = Welford::new();
        for trial in 0..rc.trials {
            let seed = derive_seed(rc.seed, trial as u64);
            let ds = corpus.generate(rc.mode, seed);
            let cfg = MemhdConfig::new(128, 128, k)
                .expect("config")
                .with_learning_rate(lr)
                .expect("lr")
                .with_epochs(epochs)
                .with_seed(seed);
            let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
            w.push(model.evaluate(&ds.test_features, &ds.test_labels).expect("eval") * 100.0);
        }
        t.row(&[format!("{lr}"), format!("{:.2}", w.mean()), format!("{:.2}", w.sample_std_dev())]);
    }
    println!("\n2) learning rate (paper range 0.01-0.1):");
    t.print();

    // --- 3. initial cluster ratio extremes ---
    let mut t = Table::new(&["R", "accuracy %", "±sd"]);
    for r in [0.1f32, 0.5, 0.8, 1.0] {
        let mut w = Welford::new();
        for trial in 0..rc.trials {
            let seed = derive_seed(rc.seed, trial as u64);
            let ds = corpus.generate(rc.mode, seed);
            let cfg = MemhdConfig::new(128, 64, k)
                .expect("config")
                .with_initial_cluster_ratio(r)
                .expect("ratio")
                .with_epochs(epochs)
                .with_seed(seed);
            let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
            w.push(model.evaluate(&ds.test_features, &ds.test_labels).expect("eval") * 100.0);
        }
        t.row(&[format!("{r}"), format!("{:.2}", w.mean()), format!("{:.2}", w.sample_std_dev())]);
    }
    println!("\n3) initial cluster ratio at a narrow AM (128x64):");
    t.print();

    // --- 4. bit-error-rate robustness on mapped arrays ---
    println!("\n4) accuracy vs array bit-error rate (MEMHD 128x128 vs BasicHDC 1024D):");
    let mut t = Table::new(&["BER", "MEMHD %", "BasicHDC %"]);
    let bers = [0.0f64, 0.01, 0.02, 0.05, 0.10, 0.20];
    let mut memhd_acc = vec![Welford::new(); bers.len()];
    let mut basic_acc = vec![Welford::new(); bers.len()];
    for trial in 0..rc.trials {
        let seed = derive_seed(rc.seed, trial as u64);
        let ds = corpus.generate(rc.mode, seed);
        let cfg =
            MemhdConfig::new(128, 128, k).expect("config").with_epochs(epochs).with_seed(seed);
        let memhd = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("memhd fit");
        let basic =
            BasicHdc::fit(1024, &ds.train_features, &ds.train_labels, k, seed).expect("basic fit");

        // Pre-encode the test queries once per model, packed for the
        // batched mapped search.
        let memhd_batch = memhd.encoder().encode_binary_batch(&ds.test_features).expect("enc");
        let basic_batch = RandomProjectionEncoder::new(ds.feature_dim(), 1024, seed)
            .encode_binary_batch(&ds.test_features)
            .expect("enc");

        let spec = ArraySpec::default();
        let memhd_map =
            AmMapping::new(memhd.binary_am(), spec, MappingStrategy::Basic).expect("map");
        let basic_map =
            AmMapping::new(basic.binary_am(), spec, MappingStrategy::Basic).expect("map");

        for (bi, &ber) in bers.iter().enumerate() {
            let fm = FaultyAmMapping::program(&memhd_map, FaultModel::bit_flip(ber), seed)
                .expect("faulty");
            let fb = FaultyAmMapping::program(&basic_map, FaultModel::bit_flip(ber), seed)
                .expect("faulty");
            let preds_m = fm.search_batch(&memhd_batch).expect("search").predicted_classes;
            let preds_b = fb.search_batch(&basic_batch).expect("search").predicted_classes;
            let correct_m = preds_m.iter().zip(&ds.test_labels).filter(|(p, l)| p == l).count();
            let correct_b = preds_b.iter().zip(&ds.test_labels).filter(|(p, l)| p == l).count();
            memhd_acc[bi].push(correct_m as f64 / ds.test_len() as f64 * 100.0);
            basic_acc[bi].push(correct_b as f64 / ds.test_len() as f64 * 100.0);
        }
    }
    for (bi, &ber) in bers.iter().enumerate() {
        t.row(&[
            format!("{ber:.2}"),
            format!("{:.2}", memhd_acc[bi].mean()),
            format!("{:.2}", basic_acc[bi].mean()),
        ]);
    }
    t.print();
}
