//! Regenerates **Fig. 5**: clustering-based vs random-sampling
//! initialization — test accuracy per training epoch.
//!
//! The paper's claims to check: clustering starts substantially higher
//! (+8.69% on MNIST 512x512, +19.95% on ISOLET 1024x256), converges in
//! fewer epochs, and ends slightly ahead.
//!
//! Usage: `cargo run --release -p memhd-bench --bin fig5 [--quick|--full]`

use hd_linalg::rng::derive_seed;
use hd_linalg::stats::Welford;
use hdc::{encode_dataset, RandomProjectionEncoder};
use memhd::{InitMethod, MemhdConfig, MemhdModel};
use memhd_bench::datasets::Corpus;
use memhd_bench::runconfig::{RunConfig, RunMode};
use memhd_bench::table::Table;

fn main() {
    let rc = RunConfig::from_env();
    // (corpus, D, C, epochs) — paper uses MNIST 512x512 and ISOLET 1024x256
    // over ~50 epochs; quick mode shrinks the shapes and horizon.
    let scenarios: Vec<(Corpus, usize, usize, usize)> = match rc.mode {
        RunMode::Quick => {
            vec![(Corpus::Mnist, 256, 128, 15), (Corpus::Isolet, 512, 128, 15)]
        }
        RunMode::Full => {
            vec![(Corpus::Mnist, 512, 512, 50), (Corpus::Isolet, 1024, 256, 50)]
        }
    };

    println!(
        "Fig. 5: clustering vs random-sampling initialization; mode {:?}, {} trial(s)\n",
        rc.mode, rc.trials
    );

    for (corpus, dim, cols, epochs) in scenarios {
        let k = corpus.num_classes();
        // curves[init][epoch] accumulated over trials.
        let mut curves: Vec<Vec<Welford>> = vec![vec![Welford::new(); epochs + 1]; 2];

        for trial in 0..rc.trials {
            let seed = derive_seed(rc.seed, trial as u64);
            let ds = corpus.generate(rc.mode, seed);
            let encoder =
                RandomProjectionEncoder::new(ds.feature_dim(), dim, derive_seed(seed, 0x656e63));
            let train = encode_dataset(&encoder, &ds.train_features).expect("encode train");
            let test = encode_dataset(&encoder, &ds.test_features).expect("encode test");

            for (mi, method) in
                [InitMethod::Clustering, InitMethod::RandomSampling].into_iter().enumerate()
            {
                let cfg = MemhdConfig::new(dim, cols, k)
                    .expect("valid shape")
                    .with_epochs(epochs)
                    .with_init_method(method)
                    .with_seed(seed);
                let model = MemhdModel::fit_encoded_with_eval(
                    &cfg,
                    encoder.clone(),
                    &train,
                    &ds.train_labels,
                    Some((&test.bin, &ds.test_labels)),
                )
                .expect("fit");
                let records = model.history().records();
                // Early-stopped runs hold their last value to the horizon.
                let mut last = 0.0;
                for (e, bucket) in curves[mi].iter_mut().enumerate() {
                    if let Some(r) = records.get(e) {
                        last = r.eval_accuracy.expect("eval recorded") * 100.0;
                    }
                    bucket.push(last);
                }
            }
        }

        println!("== {} {}x{} ({} epochs) ==", corpus.name(), dim, cols, epochs);
        let mut t = Table::new(&["epoch", "clustering %", "random %", "gap"]);
        let step = (epochs / 10).max(1);
        for e in (0..=epochs).step_by(step) {
            let c = curves[0][e].mean();
            let r = curves[1][e].mean();
            t.row(&[e.to_string(), format!("{c:.2}"), format!("{r:.2}"), format!("{:+.2}", c - r)]);
        }
        t.print();
        let init_gap = curves[0][0].mean() - curves[1][0].mean();
        let final_gap = curves[0][epochs].mean() - curves[1][epochs].mean();
        println!(
            "initial-accuracy gap {init_gap:+.2}% (paper: +8.69% MNIST / +19.95% ISOLET); \
             final gap {final_gap:+.2}%\n"
        );
    }
}
