//! Benchmark harness shared by the per-table/per-figure binaries.
//!
//! Every table and figure in the paper's evaluation section has a binary
//! in `src/bin/` that regenerates it:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — memory requirements of baseline HDC models |
//! | `fig3` | Fig. 3 — accuracy vs memory (KB) across three datasets |
//! | `fig4` | Fig. 4 — accuracy heatmap over dimensions × columns |
//! | `fig5` | Fig. 5 — clustering vs random-sampling initialization |
//! | `fig6` | Fig. 6 — accuracy vs initial cluster ratio `R` |
//! | `table2` | Table II — cycles / arrays / utilization on 128×128 arrays |
//! | `fig7` | Fig. 7 — normalized AM energy and cycles vs array usage |
//!
//! Each binary accepts `--quick` (reduced sweep, default) or `--full`
//! (paper-protocol 5-trial averaging and wider sweeps), plus `--trials N`
//! and `--seed S` overrides. The Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod runconfig;
pub mod table;

use hd_linalg::stats::Welford;

/// Averages `f(trial_seed)` over `trials` seeds derived from `base_seed`,
/// mirroring the paper's "5 trials, average reported" protocol.
pub fn average_over_trials<F: FnMut(u64) -> f64>(
    trials: usize,
    base_seed: u64,
    mut f: F,
) -> (f64, f64) {
    let mut w = Welford::new();
    for t in 0..trials {
        w.push(f(hd_linalg::rng::derive_seed(base_seed, t as u64)));
    }
    (w.mean(), w.sample_std_dev())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_is_deterministic_and_correct() {
        let (mean, sd) = average_over_trials(4, 9, |seed| (seed % 7) as f64);
        let (mean2, _) = average_over_trials(4, 9, |seed| (seed % 7) as f64);
        assert_eq!(mean, mean2);
        assert!(sd >= 0.0);
    }

    #[test]
    fn single_trial_zero_sd() {
        let (_, sd) = average_over_trials(1, 0, |_| 5.0);
        assert_eq!(sd, 0.0);
    }
}
