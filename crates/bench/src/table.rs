//! Minimal aligned-column table printer for bench output.

/// An aligned text table accumulated row by row.
///
/// # Example
///
/// ```
/// use memhd_bench::table::Table;
///
/// let mut t = Table::new(&["model", "accuracy"]);
/// t.row(&["MEMHD", "95.2%"]);
/// let out = t.render();
/// assert!(out.contains("MEMHD"));
/// assert!(out.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut row: Vec<String> =
            cells.iter().take(self.headers.len()).map(|c| c.as_ref().to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[c] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_padding() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        t.row(&["z"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn truncates_long_rows() {
        let mut t = Table::new(&["one"]);
        t.row(&["a", "b", "c"]);
        assert!(t.render().contains('a'));
        assert!(!t.render().contains('b'));
    }
}
