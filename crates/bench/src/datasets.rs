//! Dataset presets scaled to the run mode.
//!
//! Quick mode keeps per-class budgets small enough for minute-scale runs;
//! full mode uses budgets that preserve the paper's per-class sample
//! regime (ISOLET's ≈240/class is kept exactly — its scarcity drives the
//! Fig. 4 overfitting observation — while the image sets are scaled from
//! 6000/class to 1000/class to keep CPU runtime tractable; the per-class
//! *ratio* between datasets is what the experiments depend on).

use crate::runconfig::RunMode;
use hd_datasets::synthetic::SyntheticSpec;
use hd_datasets::Dataset;

/// Which of the paper's three evaluation datasets to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corpus {
    /// MNIST stand-in: f=784, k=10, well separated.
    Mnist,
    /// Fashion-MNIST stand-in: f=784, k=10, higher class overlap.
    Fmnist,
    /// ISOLET stand-in: f=617, k=26, few samples per class.
    Isolet,
}

impl Corpus {
    /// All three corpora in paper order.
    pub const ALL: [Corpus; 3] = [Corpus::Mnist, Corpus::Fmnist, Corpus::Isolet];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Corpus::Mnist => "MNIST",
            Corpus::Fmnist => "FMNIST",
            Corpus::Isolet => "ISOLET",
        }
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        match self {
            Corpus::Mnist | Corpus::Fmnist => 10,
            Corpus::Isolet => 26,
        }
    }

    /// Feature width `f`.
    pub fn feature_dim(&self) -> usize {
        match self {
            Corpus::Mnist | Corpus::Fmnist => 784,
            Corpus::Isolet => 617,
        }
    }

    /// Per-class (train, test) budgets for a run mode.
    pub fn budgets(&self, mode: RunMode) -> (usize, usize) {
        match (self, mode) {
            (Corpus::Isolet, RunMode::Quick) => (120, 30),
            (Corpus::Isolet, RunMode::Full) => (240, 60), // paper scale
            (_, RunMode::Quick) => (200, 50),
            (_, RunMode::Full) => (1000, 200),
        }
    }

    /// Generates the synthetic stand-in for this corpus.
    ///
    /// # Panics
    ///
    /// Panics only if the preset itself is invalid, which would be a bug.
    pub fn generate(&self, mode: RunMode, seed: u64) -> Dataset {
        let (train, test) = self.budgets(mode);
        let spec = match self {
            Corpus::Mnist => SyntheticSpec::mnist_like(train, test),
            Corpus::Fmnist => SyntheticSpec::fmnist_like(train, test),
            Corpus::Isolet => SyntheticSpec::isolet_like(train, test),
        };
        spec.generate(seed).expect("preset specs are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        for c in Corpus::ALL {
            let ds = c.generate(RunMode::Quick, 1);
            assert_eq!(ds.num_classes, c.num_classes());
            assert_eq!(ds.feature_dim(), c.feature_dim());
        }
    }

    #[test]
    fn isolet_full_is_paper_scale() {
        let (train, test) = Corpus::Isolet.budgets(RunMode::Full);
        assert_eq!((train, test), (240, 60));
    }

    #[test]
    fn quick_budgets_are_smaller() {
        for c in Corpus::ALL {
            let (qt, _) = c.budgets(RunMode::Quick);
            let (ft, _) = c.budgets(RunMode::Full);
            assert!(qt <= ft);
        }
    }

    #[test]
    fn names() {
        assert_eq!(Corpus::Mnist.name(), "MNIST");
        assert_eq!(Corpus::Fmnist.name(), "FMNIST");
        assert_eq!(Corpus::Isolet.name(), "ISOLET");
    }
}
