//! Over-the-wire serving throughput: pipelined QUERY frames through the
//! loopback TCP and Unix-domain-socket front-ends.
//!
//! The question this bench answers: what does the socket hop cost on
//! top of the in-process micro-batcher (`serve_throughput`)? The client
//! keeps its queries packed (`WireClient::send_packed_words` — the
//! zero-repack path) and pipelines a window of frames before collecting
//! responses, so the wire cost measured is framing + syscalls + the
//! extra copy through the kernel socket buffer, not round-trip stalls.
//!
//! Ids: `wire_tcp_32x8` = TCP, frames of 32 queries, 8 frames in
//! flight; `wire_uds_32x8` = the same over a Unix-domain socket. Model
//! shape matches `serve_throughput` (MEMHD flagship 128 × 128).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hd_linalg::rng::seeded;
use hd_linalg::BitVector;
use hd_serve::net::{WireClient, WireConfig, WireServer};
use hd_serve::{Searchable, ServeConfig, Server};
use hdc::BinaryAm;
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

const QUERIES: usize = 8192;
const DIM: usize = 128;
const FRAME: usize = 32;
const WINDOW_FRAMES: usize = 8;

fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

/// All queries pre-packed into one contiguous word buffer — the client
/// sends `FRAME`-query slices of it verbatim (no per-bit repacking
/// anywhere between here and the server's pending batch).
fn packed_queries(n: usize, dim: usize, seed: u64) -> Vec<u64> {
    let mut rng = seeded(seed);
    let mut words = Vec::with_capacity(n * dim.div_ceil(64));
    for _ in 0..n {
        let q = BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>());
        words.extend_from_slice(q.as_words());
    }
    words
}

/// Pushes every query through `client` as pipelined `FRAME`-query
/// frames with `WINDOW_FRAMES` frames outstanding, returning a checksum
/// of winning rows.
fn drive(client: &mut WireClient, words: &[u64]) -> usize {
    let wpq = client.words_per_query() as usize;
    let mut sum = 0usize;
    let mut outstanding = 0usize;
    for frame in words.chunks(FRAME * wpq) {
        client.send_packed_words(frame, 1).expect("send");
        outstanding += frame.len() / wpq;
        while outstanding > (WINDOW_FRAMES - 1) * FRAME {
            let (_, hits) = client.recv_response().expect("recv");
            sum += hits[0].row;
            outstanding -= 1;
        }
    }
    while outstanding > 0 {
        let (_, hits) = client.recv_response().expect("recv");
        sum += hits[0].row;
        outstanding -= 1;
    }
    sum
}

fn bench_wire(c: &mut Criterion) {
    // Provenance for the recorded numbers (see BENCH_search.json).
    eprintln!("hd_linalg kernel backend: {}", hd_linalg::kernel::active());
    let am = Arc::new(random_am(10, 128, DIM, 3));
    let words = packed_queries(QUERIES, DIM, 1000);
    let server = Arc::new(
        Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .expect("server"),
    );
    let wire = WireServer::start(Arc::clone(&server), WireConfig::default()).expect("wire server");
    let addr = wire.listen_tcp("127.0.0.1:0").expect("tcp listener");

    let mut group = c.benchmark_group("wire_throughput");
    group.throughput(Throughput::Elements(QUERIES as u64));

    {
        let mut client = WireClient::connect_tcp(addr).expect("tcp client");
        group.bench_with_input(
            BenchmarkId::new(format!("wire_tcp_{FRAME}x{WINDOW_FRAMES}"), QUERIES),
            &words,
            |b, words| b.iter(|| drive(&mut client, words)),
        );
    }

    #[cfg(unix)]
    {
        let path = std::env::temp_dir().join(format!("hd-wire-bench-{}.sock", std::process::id()));
        wire.listen_uds(&path).expect("uds listener");
        let mut client = WireClient::connect_uds(&path).expect("uds client");
        group.bench_with_input(
            BenchmarkId::new(format!("wire_uds_{FRAME}x{WINDOW_FRAMES}"), QUERIES),
            &words,
            |b, words| b.iter(|| drive(&mut client, words)),
        );
    }

    group.finish();
    wire.shutdown();
    server.shutdown();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
