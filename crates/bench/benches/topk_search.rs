//! Exact top-k associative search: the fused k-best sweep vs the naive
//! score-then-sort reference, and the k-th-score cascade vs the exact
//! fused sweep on the imbalanced BasicHDC 10240×10 AM.
//!
//! The fused path (`SearchMemory::topk_batch`) carries a bounded k-best
//! list per query lane through the blocked panel sweep and never
//! materializes the full `ScoreMatrix`; the reference materializes all
//! rows×queries scores and stable-sorts each query's row slice. Both
//! paths are asserted bit-identical (same rows, same order) before any
//! timing runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, BoundCascade, CascadePlan, QueryBatch, SearchMemory};
use rand::Rng;

const K: usize = 5;

fn random_rows(rows: usize, dim: usize, seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..rows)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect()
}

fn random_batch(n: usize, dim: usize, seed: u64) -> QueryBatch {
    let mut rng = seeded(seed);
    let queries: Vec<BitVector> = (0..n)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect();
    QueryBatch::from_vectors(&queries).expect("batch")
}

/// Score-then-sort reference: materialize the full score matrix, then
/// stable-sort each query's `(row, score)` rows by (score desc, row asc)
/// and truncate to `k`. This is what callers had to write before
/// `topk_batch` existed — and what the fused sweep must beat.
fn sorted_topk(memory: &SearchMemory, batch: &QueryBatch, k: usize) -> Vec<Vec<(usize, u32)>> {
    let scores = memory.dot_batch(batch).expect("scores");
    (0..batch.len())
        .map(|q| {
            let mut rows: Vec<(usize, u32)> =
                scores.scores(q).iter().copied().enumerate().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            rows.truncate(k.min(rows.len()));
            rows
        })
        .collect()
}

/// Fused top-k vs score-then-sort at the Table II AM shapes: MEMHD
/// 128×128 (many rows, narrow) and BasicHDC 10240×10 (few rows, wide).
fn bench_topk_fused(c: &mut Criterion) {
    eprintln!("hd_linalg kernel backend: {}", hd_linalg::kernel::active());
    let mut group = c.benchmark_group("topk_search");
    let n_queries = 1_000usize;
    // (label, rows, dim)
    let shapes = [("memhd_128x128", 128usize, 128usize), ("basic_10240x10", 10, 10240)];
    for (label, rows, dim) in shapes {
        let memory = SearchMemory::from_rows(&random_rows(rows, dim, 23)).expect("memory");
        let batch = random_batch(n_queries, dim, 24);
        // The fused sweep is an execution strategy, not an approximation:
        // pin list equality (rows AND order) before timing.
        let reference = sorted_topk(&memory, &batch, K);
        let fused = memory.topk_batch(&batch, K).expect("topk");
        for (q, expect) in reference.iter().enumerate() {
            assert_eq!(fused.hits(q), expect.as_slice(), "query {q} at {label}");
        }
        group.throughput(Throughput::Elements(n_queries as u64));
        group.bench_with_input(BenchmarkId::new(format!("fused_{label}"), n_queries), &batch, {
            let memory = memory.clone();
            move |b, batch| {
                b.iter(|| {
                    memory
                        .topk_batch(batch, K)
                        .expect("topk")
                        .hits(0)
                        .iter()
                        .map(|&(row, _)| row)
                        .sum::<usize>()
                })
            }
        });
        group.bench_with_input(BenchmarkId::new(format!("sorted_{label}"), n_queries), &batch, {
            let memory = memory.clone();
            move |b, batch| {
                b.iter(|| {
                    sorted_topk(&memory, batch, K)[0].iter().map(|&(row, _)| row).sum::<usize>()
                })
            }
        });
    }
    group.finish();
}

/// k-th-score cascade pruning vs the exact fused top-k sweep on a
/// class-imbalanced BasicHDC 10240×10 AM with a graded popcount profile
/// (the global-threshold quantization pathology of §III-B, one step
/// further along: a dense majority centroid, four moderate minority
/// centroids, five near-empty ones) and 99% majority traffic. Top-k
/// pruning needs the ranks below k to be *boundedly* below the k-th —
/// the near-empty tail's Hamming suffix bound cannot reach the running
/// k-th-best score, so the cascade finishes only the top-5 slate — and
/// the returned k-best lists stay bit-identical to `topk_batch`
/// (asserted). A flat nine-identical-sparse-centroids profile is the
/// adversarial case: every rank below 1 is statistically exchangeable,
/// nothing below the k-th can be bounded out, and the cascade degrades
/// to exact work plus overhead (see the README plan-picking guidance).
fn bench_topk_cascade(c: &mut Criterion) {
    let dim = 10240usize;
    let vectors = 10usize;
    // Serving-sized batch (~1.3 MB of query words): L2-resident on the
    // reference host, so both sides measure compute, not the DRAM/L3
    // streaming wall that equalizes them on multi-MB batches (at 10k
    // queries the ratio collapses toward 1 — both paths must stream
    // every query word once, and that stream is the bottleneck).
    let n_queries = 1_000usize;
    let mut rng = seeded(17);
    let mut density_bits = |density: f32| -> BitVector {
        BitVector::from_bools(&(0..dim).map(|_| rng.gen::<f32>() < density).collect::<Vec<_>>())
    };
    // Centroid 0: dense majority class. Centroids 1..5: moderate
    // minorities (the true top-5 slate for majority traffic).
    // Centroids 5..10: near-empty — prunable below any k=5 threshold.
    let mut rows = vec![density_bits(0.5)];
    for _ in 1..5 {
        rows.push(density_bits(0.3));
    }
    for _ in 5..vectors {
        rows.push(density_bits(0.005));
    }
    let memory = SearchMemory::from_rows(&rows).expect("memory");
    // Queries: 5%-perturbed copies of a stored centroid, 99% majority.
    let queries: Vec<BitVector> = (0..n_queries)
        .map(|i| {
            let base = if i % 100 != 0 { 0 } else { 1 + (i / 100) % (vectors - 1) };
            let mut q = rows[base].clone();
            for _ in 0..dim / 20 {
                let bit = rng.gen_range(0..dim);
                q.set(bit, !q.get(bit));
            }
            q
        })
        .collect();
    let batch = QueryBatch::from_vectors(&queries).expect("batch");
    let plan = CascadePlan::prefix(dim, dim / 16).expect("plan");
    // Serving holds exactly this bound form: derived artifacts built once.
    let bound = BoundCascade::new(std::sync::Arc::new(memory.clone()), plan).expect("bound");

    // Acceptance: the cascade's k-best lists are bit-identical (same
    // rows, same order) to the sort reference and the fused sweep.
    let reference = sorted_topk(&memory, &batch, K);
    let fused = memory.topk_batch(&batch, K).expect("topk");
    let cascade = bound.search_topk(&batch, K).expect("cascade topk");
    eprintln!(
        "topk_cascade: activation fraction {:.3} (stage shortlists {:?})",
        cascade.stats().activation_fraction(),
        cascade.stats().stage_rows()
    );
    let cascade_topk = cascade.into_topk();
    for (q, expect) in reference.iter().enumerate() {
        assert_eq!(fused.hits(q), expect.as_slice(), "fused query {q}");
        assert_eq!(cascade_topk.hits(q), expect.as_slice(), "cascade query {q}");
    }

    let mut group = c.benchmark_group("topk_search");
    group.throughput(Throughput::Elements(n_queries as u64));
    group.bench_with_input(BenchmarkId::new("exact_k5_10240x10", n_queries), &batch, |b, batch| {
        b.iter(|| {
            memory
                .topk_batch(batch, K)
                .expect("topk")
                .hits(0)
                .iter()
                .map(|&(row, _)| row)
                .sum::<usize>()
        })
    });
    group.bench_with_input(
        BenchmarkId::new("cascade_k5_10240x10", n_queries),
        &batch,
        |b, batch| {
            b.iter(|| {
                bound
                    .search_topk(batch, K)
                    .expect("cascade topk")
                    .into_topk()
                    .hits(0)
                    .iter()
                    .map(|&(row, _)| row)
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_topk_fused, bench_topk_cascade);
criterion_main!(benches);
