//! Encoding-module throughput: random projection (MVM, the MEMHD/BasicHDC
//! path) vs ID-Level binding (the SearcHD/QuantHD/LeHDC path), across the
//! dimensionalities the paper evaluates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hd_linalg::rng::seeded;
use hdc::{Encoder, IdLevelEncoder, RandomProjectionEncoder};
use rand::Rng;

fn feature_vector(f: usize, seed: u64) -> Vec<f32> {
    let mut rng = seeded(seed);
    (0..f).map(|_| rng.gen::<f32>()).collect()
}

fn bench_projection(c: &mut Criterion) {
    let f = 784;
    let x = feature_vector(f, 1);
    let mut group = c.benchmark_group("encode/projection");
    for dim in [128usize, 512, 1024] {
        let enc = RandomProjectionEncoder::new(f, dim, 7);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("fp", dim), &dim, |b, _| {
            b.iter(|| enc.encode(&x).expect("encode"))
        });
        group.bench_with_input(BenchmarkId::new("binary", dim), &dim, |b, _| {
            b.iter(|| enc.encode_binary(&x).expect("encode"))
        });
    }
    group.finish();
}

fn bench_id_level(c: &mut Criterion) {
    let f = 784;
    let x = feature_vector(f, 2);
    let mut group = c.benchmark_group("encode/id_level");
    group.sample_size(20);
    for dim in [128usize, 512, 1024] {
        let enc = IdLevelEncoder::new(f, dim, 64, 7);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("binary", dim), &dim, |b, _| {
            b.iter(|| enc.encode_binary(&x).expect("encode"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projection, bench_id_level);
criterion_main!(benches);
