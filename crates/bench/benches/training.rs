//! Training-phase costs: classwise k-means initialization and one
//! quantization-aware learning epoch, at bench-scale problem sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_datasets::synthetic::SyntheticSpec;
use hdc::{encode_dataset, RandomProjectionEncoder};
use memhd::{init, train, MemhdConfig};

fn bench_training(c: &mut Criterion) {
    let ds = SyntheticSpec::mnist_like(40, 10).generate(5).expect("dataset");
    let encoder = RandomProjectionEncoder::new(ds.feature_dim(), 128, 9);
    let encoded = encode_dataset(&encoder, &ds.train_features).expect("encode");
    let cfg = MemhdConfig::new(128, 64, ds.num_classes).expect("config").with_seed(1);

    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    group.bench_function("clustering_init_128x64", |b| {
        b.iter(|| init::clustering_init(&cfg, &encoded, &ds.train_labels).expect("init"))
    });

    group.bench_function("random_sampling_init_128x64", |b| {
        b.iter(|| init::random_sampling_init(&cfg, &encoded, &ds.train_labels).expect("init"))
    });

    let fp_template = init::clustering_init(&cfg, &encoded, &ds.train_labels).expect("init");
    group.bench_function("qat_epoch_128x64", |b| {
        b.iter_batched(
            || fp_template.clone(),
            |mut fp| {
                train::quantization_aware_train(
                    &mut fp,
                    &encoded,
                    &ds.train_labels,
                    0.01,
                    1,
                    1,
                    train::TrainOptions::default(),
                )
                .expect("train")
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
