//! Associative-search latency: the software popcount sweep behind every
//! training epoch, at the AM shapes of Table II.
//!
//! MEMHD 128×128 (one array worth of memory) vs BasicHDC 10240×10 (the
//! high-dimensional baseline) — the software echo of the paper's 80×
//! cycle-count gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hd_linalg::rng::seeded;
use hd_linalg::BitVector;
use hdc::BinaryAm;
use rand::Rng;

fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

fn random_query(dim: usize, seed: u64) -> BitVector {
    let mut rng = seeded(seed);
    let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
    BitVector::from_bools(&bits)
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("associative_search");
    // (label, k, vectors, dim) — Table II structures.
    let shapes = [
        ("memhd_128x128", 10usize, 128usize, 128usize),
        ("memhd_512x128", 26, 128, 512),
        ("basic_10240x10", 10, 10, 10240),
        ("searchd_1024x160", 10, 160, 1024),
    ];
    for (label, k, vectors, dim) in shapes {
        let am = random_am(k, vectors, dim, 3);
        let q = random_query(dim, 4);
        group.bench_with_input(BenchmarkId::from_parameter(label), &am, |b, am| {
            b.iter(|| am.search(&q).expect("search"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
