//! Associative-search latency: the software popcount sweep behind every
//! training epoch, at the AM shapes of Table II.
//!
//! MEMHD 128×128 (one array worth of memory) vs BasicHDC 10240×10 (the
//! high-dimensional baseline) — the software echo of the paper's 80×
//! cycle-count gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hd_linalg::rng::seeded;
use hd_linalg::{
    BitVector, BoundCascade, CascadePlan, CostModel, QueryBatch, ScoreMatrix, SearchMemory,
};
use hdc::BinaryAm;
use imc_sim::{AmMapping, ArraySpec, MappingStrategy};
use rand::Rng;

fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

fn random_query(dim: usize, seed: u64) -> BitVector {
    let mut rng = seeded(seed);
    let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
    BitVector::from_bools(&bits)
}

fn bench_search(c: &mut Criterion) {
    // Provenance for the recorded numbers: which popcount backend the
    // runtime dispatch selected (see BENCH_search.json `environment`).
    eprintln!("hd_linalg kernel backend: {}", hd_linalg::kernel::active());
    let mut group = c.benchmark_group("associative_search");
    // (label, k, vectors, dim) — Table II structures.
    let shapes = [
        ("memhd_128x128", 10usize, 128usize, 128usize),
        ("memhd_512x128", 26, 128, 512),
        ("basic_10240x10", 10, 10, 10240),
        ("searchd_1024x160", 10, 160, 1024),
    ];
    for (label, k, vectors, dim) in shapes {
        let am = random_am(k, vectors, dim, 3);
        let q = random_query(dim, 4);
        group.bench_with_input(BenchmarkId::from_parameter(label), &am, |b, am| {
            b.iter(|| am.search(&q).expect("search"))
        });
    }
    group.finish();
}

/// Batched vs per-query associative search at the MEMHD 128×128 shape —
/// the throughput comparison behind the committed `BENCH_search.json`
/// perf trajectory. The per-query loop already runs the shared popcount
/// kernel; the batched path additionally amortizes memory-row loads over
/// register-blocked query tiles and drops all per-query allocation.
fn bench_search_batched(c: &mut Criterion) {
    let (k, vectors, dim) = (10usize, 128usize, 128usize);
    let am = random_am(k, vectors, dim, 3);
    let mut group = c.benchmark_group("associative_search_batched");
    for &n_queries in &[1_000usize, 10_000] {
        let queries: Vec<BitVector> =
            (0..n_queries).map(|i| random_query(dim, 1000 + i as u64)).collect();
        let batch = QueryBatch::from_vectors(&queries).expect("batch");
        group.throughput(Throughput::Elements(n_queries as u64));
        group.bench_with_input(
            BenchmarkId::new("single_loop", n_queries),
            &queries,
            |b, queries| {
                b.iter(|| queries.iter().map(|q| am.search(q).expect("search").row).sum::<usize>())
            },
        );
        group.bench_with_input(BenchmarkId::new("batched", n_queries), &batch, |b, batch| {
            b.iter(|| {
                am.search_batch(batch).expect("search").hits().iter().map(|h| h.row).sum::<usize>()
            })
        });
        // Winners-only sweep: the classification fast path (no score
        // matrix is materialized).
        group.bench_with_input(
            BenchmarkId::new("batched_classify", n_queries),
            &batch,
            |b, batch| b.iter(|| am.classify_batch(batch).expect("search").iter().sum::<usize>()),
        );
    }
    group.finish();
}

/// Progressive-precision cascade vs the exact winners sweep on a
/// class-imbalanced AM at the BasicHDC 10240×10 shape.
///
/// The workload models imbalanced traffic over an AM whose centroid
/// popcounts are imbalanced (the global-threshold quantization pathology
/// §III-B warns about): one dense majority-class centroid, nine sparse
/// minority ones, and 99% of the 10k queries near the majority centroid.
/// The cascade scores a D/16 prefix, prunes the sparse centroids via the
/// Hamming bound, and finishes only the survivors — same predictions as
/// `classify_batch`, bit for bit (asserted before timing).
fn bench_cascade_search(c: &mut Criterion) {
    let dim = 10240usize;
    let vectors = 10usize;
    let n_queries = 10_000usize;
    let mut rng = seeded(17);
    let mut density_bits = |density: f32| -> BitVector {
        BitVector::from_bools(&(0..dim).map(|_| rng.gen::<f32>() < density).collect::<Vec<_>>())
    };
    // Centroid 0: dense majority class. Centroids 1..10: sparse.
    let mut centroids = vec![(0usize, density_bits(0.5))];
    for v in 1..vectors {
        centroids.push((v, density_bits(0.02)));
    }
    let rows: Vec<BitVector> = centroids.iter().map(|(_, b)| b.clone()).collect();
    let am = BinaryAm::from_centroids(vectors, centroids).expect("valid AM");
    // Queries: 5%-perturbed copies of a stored centroid, 99% of them
    // from the majority class.
    let queries: Vec<BitVector> = (0..n_queries)
        .map(|i| {
            let base = if i % 100 != 0 { 0 } else { 1 + (i / 100) % (vectors - 1) };
            let mut q = rows[base].clone();
            for _ in 0..dim / 20 {
                let bit = rng.gen_range(0..dim);
                q.set(bit, !q.get(bit));
            }
            q
        })
        .collect();
    let batch = QueryBatch::from_vectors(&queries).expect("batch");
    let plan = CascadePlan::prefix(dim, dim / 16).expect("plan");
    // Pre-derive the plan's artifacts once, mirroring how `classify_batch`
    // reuses the AM's pre-packed memory: the serving path (hd_serve's
    // cascade adapters) holds exactly this bound form.
    let bound = BoundCascade::new(std::sync::Arc::new(am.search_memory().clone()), plan.clone())
        .expect("bound cascade");

    // Auto-tuned plan: the tuner replays the Hamming bound on a strided
    // subsample of the real traffic and picks the stage widths itself —
    // the id pins that it is no slower than the hand-picked D/16 plan.
    let tuned_plan = am.tuned_cascade_plan(&batch).expect("tuned plan");
    let tuned_bound =
        BoundCascade::new(std::sync::Arc::new(am.search_memory().clone()), tuned_plan.clone())
            .expect("tuned bound cascade");
    // Partitioned mapping (Table II's P=16 shape for 10240x10): the
    // cascade runs with stage boundaries on the 640-dim segment grid and
    // per-partition shortlist carry-over; the mapping-level tuner scores
    // candidates on that grid directly.
    let partitions = 16usize;
    let mapping =
        AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Partitioned { partitions })
            .expect("partitioned mapping");
    let part_plan = mapping.tuned_cascade_plan(&batch).expect("segment-aligned tuned plan");

    // The cascade is an execution strategy, not an approximation: pin
    // prediction equality (and report the pruning rate) before timing.
    let exact = am.classify_batch(&batch).expect("exact");
    assert_eq!(exact, am.classify_batch_cascade(&batch, &plan).expect("cascade"));
    assert_eq!(exact, am.classify_batch_cascade(&batch, &tuned_plan).expect("tuned cascade"));
    let part_out = mapping.search_batch_cascade(&batch, &part_plan).expect("partitioned cascade");
    assert_eq!(exact, part_out.predicted_classes);
    let stats = am.search_cascade(&batch, &plan).expect("cascade");
    eprintln!(
        "cascade_search: activation fraction {:.3} (stage shortlists {:?}); tuned plan ends \
         {:?} (activation {:.3}); partitioned P={partitions} plan ends {:?} (activation {:.3})",
        stats.stats().activation_fraction(),
        stats.stats().stage_rows(),
        tuned_plan.ends(),
        am.search_cascade(&batch, &tuned_plan).expect("tuned").stats().activation_fraction(),
        part_plan.ends(),
        part_out.activation_fraction(),
    );

    let mut group = c.benchmark_group("cascade_search");
    group.throughput(Throughput::Elements(n_queries as u64));
    group.bench_with_input(
        BenchmarkId::new("batched_classify_10240x10", n_queries),
        &batch,
        |b, batch| b.iter(|| am.classify_batch(batch).expect("search").iter().sum::<usize>()),
    );
    group.bench_with_input(
        BenchmarkId::new("cascade_classify_10240x10", n_queries),
        &batch,
        |b, batch| {
            b.iter(|| {
                bound
                    .search(batch)
                    .expect("search")
                    .winners()
                    .iter()
                    .map(|&(row, _)| am.class_of(row))
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("cascade_tuned_10240x10", n_queries),
        &batch,
        |b, batch| {
            b.iter(|| {
                tuned_bound
                    .search(batch)
                    .expect("search")
                    .winners()
                    .iter()
                    .map(|&(row, _)| am.class_of(row))
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("cascade_partitioned_10240x10", n_queries),
        &batch,
        |b, batch| {
            b.iter(|| {
                mapping
                    .search_batch_cascade(batch, &part_plan)
                    .expect("search")
                    .predicted_classes
                    .iter()
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

/// Repeated-batch cascade loops at the model layer: the cached bound
/// handle (`MemhdModel::predict_encoded_batch_cascade`, whose binary AM
/// caches the plan's prefix sub-memory and row-suffix table) vs. PR 4's
/// per-call path (`BitMatrix::search_cascade`, which re-derives both
/// every call). Small batches against a wide imbalanced AM make the
/// derivation cost visible — exactly the QAT-epoch / eval-sweep shape the
/// caching targets.
fn bench_cascade_repeat(c: &mut Criterion) {
    let dim = 2048usize;
    let classes = 64usize;
    let vectors = 2048usize; // 32 centroids per class
    let batch_queries = 64usize;
    let features = 8usize;
    let mut rng = seeded(19);
    let mut density_bits = |density: f32| -> BitVector {
        BitVector::from_bools(&(0..dim).map(|_| rng.gen::<f32>() < density).collect::<Vec<_>>())
    };
    // Centroid 0: dense majority class. The rest: sparse minorities.
    let mut centroids = vec![(0usize, density_bits(0.5))];
    for v in 1..vectors {
        centroids.push((v % classes, density_bits(0.02)));
    }
    let rows: Vec<BitVector> = centroids.iter().map(|(_, b)| b.clone()).collect();
    let am = BinaryAm::from_centroids(classes, centroids).expect("valid AM");
    // Wrap the AM in a real MemhdModel (assemble = the import path for
    // externally produced memories) so the loop runs through the model
    // layer the acceptance criterion names.
    let fp_rows: Vec<(usize, Vec<f32>)> =
        (0..vectors).map(|v| (am.class_of(v), am.centroid(v).to_f32())).collect();
    let fp_am = hdc::FloatAm::from_centroids(classes, fp_rows).expect("fp mirror");
    let config = memhd::MemhdConfig::new(dim, vectors, classes).expect("config");
    let encoder = hdc::RandomProjectionEncoder::new(features, dim, 7);
    let model = memhd::MemhdModel::assemble(config, encoder, fp_am, am).expect("assembled model");
    let am = model.binary_am();
    // One micro-batch of encoded queries, 99% majority traffic, replayed
    // every iteration — the repeated-batch loop.
    let queries: Vec<BitVector> = (0..batch_queries)
        .map(|i| {
            let base = if i % 32 != 0 { 0 } else { 1 + (i % (vectors - 1)) };
            let mut q = rows[base].clone();
            for _ in 0..dim / 20 {
                let bit = rng.gen_range(0..dim);
                q.set(bit, !q.get(bit));
            }
            q
        })
        .collect();
    let batch = QueryBatch::from_vectors(&queries).expect("batch");
    let plan = am.tuned_cascade_plan(&batch).expect("tuned plan");
    assert!(plan.stages() > 1, "imbalanced workload must tune to a cascade: {plan:?}");

    let exact = am.classify_batch(&batch).expect("exact");
    let percall = |batch: &QueryBatch| -> usize {
        // PR 4's per-call path, verbatim: the BitMatrix-level cascade
        // derives the prefix sub-memory and row-suffix table inside the
        // call, every call.
        am.as_bit_matrix()
            .search_cascade(batch, &plan)
            .expect("search")
            .winners()
            .iter()
            .map(|&(row, _)| am.class_of(row))
            .sum::<usize>()
    };
    assert_eq!(exact, model.predict_encoded_batch_cascade(&batch, &plan).expect("cached"));
    assert_eq!(exact.iter().sum::<usize>(), percall(&batch));
    eprintln!("cascade_repeat: tuned plan ends {:?} over {vectors}x{dim}", plan.ends());

    let mut group = c.benchmark_group("cascade_repeat");
    group.throughput(Throughput::Elements(batch_queries as u64));
    group.bench_with_input(
        BenchmarkId::new("memhd_bound_cached", batch_queries),
        &batch,
        |b, batch| {
            b.iter(|| {
                model
                    .predict_encoded_batch_cascade(batch, &plan)
                    .expect("search")
                    .iter()
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("memhd_percall_rederive", batch_queries),
        &batch,
        |b, batch| b.iter(|| percall(batch)),
    );
    group.finish();
}

/// PR 8's calibrated-tuner and zero-repack segment-view paths.
///
/// `tuned_plan_10240x10` times `CascadePlan::tuned` itself — candidate
/// plans priced with the once-per-host calibrated `CostModel` — on the
/// imbalanced 10240×10 workload, asserting first that the calibrated
/// tuner still converges to a multi-stage plan with a short prefix that
/// classifies bit-identically to the exact sweep. The `segview_*` pair
/// isolates the per-call segment re-pack the partitioned layouts used to
/// pay on unaligned segment grids (dim 1600, P=16 → 100-bit segments,
/// off the word grid): `segview_reuse` drives every partition through
/// `QueryBatch::segments` (per-bit packed once, cached on the batch),
/// `segview_repack` re-slices and re-packs every query segment on every
/// call — the pre-PR 8 `AmMapping` behavior, kept here as the reference.
/// Scores are asserted bit-identical across the two paths before timing.
fn bench_cascade_calibrated(c: &mut Criterion) {
    eprintln!("cascade_calibrated: calibrated cost model {}", CostModel::active());

    // Tuner latency on the imbalanced 10240x10 workload (one dense
    // majority centroid, nine sparse; mostly-majority traffic).
    let dim = 10240usize;
    let vectors = 10usize;
    let mut rng = seeded(23);
    let mut density_bits = |density: f32| -> BitVector {
        BitVector::from_bools(&(0..dim).map(|_| rng.gen::<f32>() < density).collect::<Vec<_>>())
    };
    let mut rows = vec![density_bits(0.5)];
    for _ in 1..vectors {
        rows.push(density_bits(0.02));
    }
    let queries: Vec<BitVector> = (0..256)
        .map(|i| {
            let base = if i % 50 != 0 { 0 } else { 1 + i % (vectors - 1) };
            let mut q = rows[base].clone();
            for _ in 0..dim / 20 {
                let bit = rng.gen_range(0..dim);
                q.set(bit, !q.get(bit));
            }
            q
        })
        .collect();
    let mem = SearchMemory::from_rows(&rows).expect("memory");
    let batch = QueryBatch::from_vectors(&queries).expect("batch");
    let plan = CascadePlan::tuned(&mem, &batch).expect("tuned plan");
    assert!(plan.stages() > 1, "calibrated tuner must cascade here: {plan:?}");
    assert!(plan.ends()[0] <= dim / 8, "prefix should be short: {plan:?}");
    assert_eq!(
        mem.search_cascade(&batch, &plan).expect("cascade").winners(),
        mem.winners_batch(&batch).expect("exact").as_slice()
    );
    eprintln!("cascade_calibrated: tuned plan ends {:?}", plan.ends());

    let mut group = c.benchmark_group("cascade_calibrated");
    group.bench_with_input(
        BenchmarkId::from_parameter("tuned_plan_10240x10"),
        &batch,
        |b, batch| b.iter(|| CascadePlan::tuned(&mem, batch).expect("tuned").stages()),
    );

    // Segment-view reuse vs per-call re-pack on an unaligned grid.
    let (sdim, srows, parts) = (1600usize, 64usize, 16usize);
    let seg = sdim / parts; // 100 bits: off the word grid
    let stored: Vec<BitVector> = (0..srows).map(|i| random_query(sdim, 40 + i as u64)).collect();
    let memories: Vec<SearchMemory> = (0..parts)
        .map(|p| {
            let segs: Vec<BitVector> = stored.iter().map(|r| r.slice(p * seg, seg)).collect();
            SearchMemory::from_rows(&segs).expect("partition memory")
        })
        .collect();
    let squeries: Vec<BitVector> = (0..64).map(|i| random_query(sdim, 400 + i as u64)).collect();
    let sbatch = QueryBatch::from_vectors(&squeries).expect("batch");
    let mut scratch = ScoreMatrix::zeros(squeries.len(), srows);
    let mut acc = vec![0u32; squeries.len() * srows];
    let reuse = |batch: &QueryBatch, scratch: &mut ScoreMatrix, acc: &mut Vec<u32>| -> u64 {
        acc.iter_mut().for_each(|a| *a = 0);
        let segs = batch.segments(seg).expect("segment views");
        for (p, memory) in memories.iter().enumerate() {
            memory.dot_batch_into(&segs[p], scratch).expect("partition sweep");
            for q in 0..batch.len() {
                for (a, s) in acc[q * srows..(q + 1) * srows].iter_mut().zip(scratch.scores(q)) {
                    *a += s;
                }
            }
        }
        acc.iter().map(|&a| u64::from(a)).sum()
    };
    let repack = |batch: &QueryBatch, scratch: &mut ScoreMatrix, acc: &mut Vec<u32>| -> u64 {
        acc.iter_mut().for_each(|a| *a = 0);
        for (p, memory) in memories.iter().enumerate() {
            let packed: Vec<BitVector> =
                (0..batch.len()).map(|i| batch.query(i).slice(p * seg, seg)).collect();
            let seg_batch = QueryBatch::from_vectors(&packed).expect("segment batch");
            memory.dot_batch_into(&seg_batch, scratch).expect("partition sweep");
            for q in 0..batch.len() {
                for (a, s) in acc[q * srows..(q + 1) * srows].iter_mut().zip(scratch.scores(q)) {
                    *a += s;
                }
            }
        }
        acc.iter().map(|&a| u64::from(a)).sum()
    };
    assert_eq!(
        reuse(&sbatch, &mut scratch, &mut acc),
        repack(&sbatch, &mut scratch, &mut acc),
        "segment views must be bit-identical to per-call re-packing"
    );

    group.throughput(Throughput::Elements(squeries.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("segview_reuse_1600x64", squeries.len()),
        &sbatch,
        |b, batch| b.iter(|| reuse(batch, &mut scratch, &mut acc)),
    );
    group.bench_with_input(
        BenchmarkId::new("segview_repack_1600x64", squeries.len()),
        &sbatch,
        |b, batch| b.iter(|| repack(batch, &mut scratch, &mut acc)),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_search,
    bench_search_batched,
    bench_cascade_search,
    bench_cascade_repeat,
    bench_cascade_calibrated
);
criterion_main!(benches);
