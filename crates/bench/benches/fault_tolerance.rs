//! Accuracy-vs-BER ablation for the fault-tolerance layer (not a
//! wall-clock bench): classification accuracy of a plain fault-injected
//! mapping versus the 3-replica majority readout, swept across bit-error
//! rates. Every quantity is fully deterministic (seeded centroids,
//! queries, and fault draws), so the recorded "ns_per_iter" field —
//! reused here to carry **accuracy in percent** — is bit-stable across
//! runs and `bench_check` gates these ids on presence only.
//!
//! The curve this persists is the replication argument of the
//! fault-tolerance thread: majority-of-3 readout turns cell BER `p` into
//! roughly `3p^2`, so at BER 5e-2 the plain mapping visibly degrades
//! while R=3 stays within a few points of the ideal accuracy.

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, QueryBatch};
use hdc::BinaryAm;
use imc_sim::{
    AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy, ReplicatedAmMapping,
};
use rand::Rng;
use std::io::Write;

/// Tight-margin synthetic task: enough classes and query noise that
/// centroid corruption costs accuracy, at a dimensionality small enough
/// for cell faults to matter.
const DIM: usize = 96;
const CLASSES: usize = 16;
const QUERIES: usize = 400;
/// Per-bit query noise: far enough from the centroid that the class
/// margin is a few sigma, so BER-induced margin loss shows up.
const QUERY_FLIP: f64 = 0.34;
const BERS: [f64; 5] = [0.0, 1e-3, 1e-2, 5e-2, 1e-1];

fn golden_mapping(seed: u64) -> AmMapping {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..CLASSES)
        .map(|c| (c, BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>())))
        .collect();
    let am = BinaryAm::from_centroids(CLASSES, centroids).expect("valid AM");
    AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).expect("map")
}

/// Noisy in-class queries plus their true labels.
fn noisy_queries(golden: &AmMapping, seed: u64) -> (QueryBatch, Vec<usize>) {
    let mut rng = seeded(seed);
    let mut queries = Vec::with_capacity(QUERIES);
    let mut labels = Vec::with_capacity(QUERIES);
    for q in 0..QUERIES {
        let class = q % CLASSES;
        let row = golden.logical_row(class).expect("row");
        let bits: Vec<bool> =
            (0..DIM).map(|d| row.get(d) ^ (rng.gen::<f64>() < QUERY_FLIP)).collect();
        queries.push(BitVector::from_bools(&bits));
        labels.push(class);
    }
    (QueryBatch::from_vectors(&queries).expect("batch"), labels)
}

fn accuracy_pct(predicted: &[usize], labels: &[usize]) -> f64 {
    let hits = predicted.iter().zip(labels).filter(|(p, l)| p == l).count();
    100.0 * hits as f64 / labels.len() as f64
}

fn record(out: &mut Option<std::fs::File>, id: &str, value: f64) {
    println!("{id:55} {value:6.2} %");
    if let Some(f) = out {
        writeln!(f, "{{\"id\": \"{id}\", \"ns_per_iter\": {value}, \"samples\": 1}}")
            .expect("write CRITERION_JSON line");
    }
}

fn main() {
    let mut out = std::env::var("CRITERION_JSON").ok().map(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open CRITERION_JSON")
    });
    let golden = golden_mapping(90);
    let (batch, labels) = noisy_queries(&golden, 91);
    let ideal =
        accuracy_pct(&golden.search_batch(&batch).expect("search").predicted_classes, &labels);
    record(&mut out, "fault_tolerance/accuracy_pct/ideal", ideal);
    for ber in BERS {
        let model = if ber == 0.0 { FaultModel::ideal() } else { FaultModel::bit_flip(ber) };
        let plain = FaultyAmMapping::program(&golden, model, 92).expect("program");
        let plain_acc =
            accuracy_pct(&plain.search_batch(&batch).expect("search").predicted_classes, &labels);
        let rep = ReplicatedAmMapping::program(&golden, model, 3, 92).expect("program");
        let rep_acc =
            accuracy_pct(&rep.search_batch(&batch).expect("search").predicted_classes, &labels);
        record(&mut out, &format!("fault_tolerance/accuracy_pct/plain/ber_{ber}"), plain_acc);
        record(&mut out, &format!("fault_tolerance/accuracy_pct/rep3/ber_{ber}"), rep_acc);
    }
}
