//! Mapped-array inference: the functional IMC simulation across the three
//! mapping strategies, versus the plain software search. The cycle counts
//! these mappings report are the quantities behind Table II and Fig. 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hd_linalg::rng::seeded;
use hd_linalg::BitVector;
use hdc::BinaryAm;
use imc_sim::{AmMapping, ArraySpec, MappingStrategy};
use rand::Rng;

fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

fn bench_mapped_inference(c: &mut Criterion) {
    let spec = ArraySpec::default();
    let mut group = c.benchmark_group("imc_inference");

    // MEMHD 128x128: one-shot mapping.
    let memhd_am = random_am(10, 128, 128, 1);
    let memhd_map = AmMapping::new(&memhd_am, spec, MappingStrategy::Basic).expect("map");
    let memhd_q = {
        let mut rng = seeded(2);
        let bits: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
        BitVector::from_bools(&bits)
    };
    group.bench_function("memhd_128x128_mapped", |b| {
        b.iter(|| memhd_map.search(&memhd_q).expect("search"))
    });
    group.bench_function("memhd_128x128_software", |b| {
        b.iter(|| memhd_am.search(&memhd_q).expect("search"))
    });

    // BasicHDC 10240x10 under each strategy.
    let basic_am = random_am(10, 10, 10240, 3);
    let basic_q = {
        let mut rng = seeded(4);
        let bits: Vec<bool> = (0..10240).map(|_| rng.gen()).collect();
        BitVector::from_bools(&bits)
    };
    for (label, strategy) in [
        ("basic", MappingStrategy::Basic),
        ("partitioned_p5", MappingStrategy::Partitioned { partitions: 5 }),
        ("partitioned_p10", MappingStrategy::Partitioned { partitions: 10 }),
    ] {
        let mapping = AmMapping::new(&basic_am, spec, strategy).expect("map");
        group.bench_with_input(BenchmarkId::new("basichdc_10240x10", label), &mapping, |b, m| {
            b.iter(|| m.search(&basic_q).expect("search"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_mapped_inference);
criterion_main!(benches);
