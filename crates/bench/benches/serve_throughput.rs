//! Serving-layer throughput: single-query submissions through the
//! `hd-serve` micro-batcher vs. the hand-batched classify path.
//!
//! The question this bench answers: how much of the batched SIMD sweep's
//! throughput survives when nobody hands the kernel a batch — when
//! queries arrive one at a time and the server must coalesce them itself?
//! Submitters pipeline a window of in-flight single-query submissions
//! (the "concurrency" in the id: `served_1x256` = 1 submitter thread with
//! 256 in-flight, `served_4x64` = 4 threads with 64 in-flight each), and
//! the micro-batcher flushes every `max_batch` inline.
//!
//! All shapes use the paper's flagship MEMHD 128 centroids × 128 bits AM,
//! matching `associative_search_batched` in `BENCH_search.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, QueryBatch};
use hd_serve::{Pending, Searchable, ServeConfig, Server};
use hdc::BinaryAm;
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

const QUERIES: usize = 8192;
const DIM: usize = 128;

fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

fn random_queries(n: usize, dim: usize, seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect()
}

/// Pushes `queries` through `server` as pipelined single-query
/// submissions with `window` in-flight, returning a checksum of winning
/// rows (keeps the optimizer honest).
fn drive(server: &Server, queries: &[BitVector], window: usize) -> usize {
    let mut sum = 0usize;
    for chunk in queries.chunks(window) {
        let pendings: Vec<Pending> =
            chunk.iter().map(|q| server.submit(q.as_view()).expect("submit")).collect();
        for p in pendings {
            sum += p.wait().expect("wait").row;
        }
    }
    sum
}

fn bench_serve(c: &mut Criterion) {
    // Provenance for the recorded numbers (see BENCH_search.json).
    eprintln!("hd_linalg kernel backend: {}", hd_linalg::kernel::active());
    let am = Arc::new(random_am(10, 128, DIM, 3));
    let queries = random_queries(QUERIES, DIM, 1000);
    let batch = QueryBatch::from_vectors(&queries).expect("batch");

    let mut group = c.benchmark_group("serve_throughput");
    group.throughput(Throughput::Elements(QUERIES as u64));

    // The ceiling: the whole batch handed to the kernel at once.
    group.bench_with_input(
        BenchmarkId::new("direct_batched_classify", QUERIES),
        &batch,
        |b, batch| b.iter(|| am.classify_batch(batch).expect("classify").iter().sum::<usize>()),
    );

    // One submitter, 256 in-flight single-query submissions: every flush
    // is a full inline (flat-combined) one.
    {
        let server = Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .expect("server");
        group.bench_with_input(
            BenchmarkId::new("served_1x256", QUERIES),
            &queries,
            |b, queries| b.iter(|| drive(&server, queries, 256)),
        );
        server.shutdown();
    }

    // Four concurrent submitters, 64 in-flight each — contended mutex,
    // cross-thread coalescing, occasional parking.
    {
        let server = Arc::new(
            Server::start(
                Arc::clone(&am) as Arc<dyn Searchable>,
                ServeConfig {
                    max_batch: 64,
                    max_delay: Duration::from_micros(200),
                    ..Default::default()
                },
            )
            .expect("server"),
        );
        group.bench_with_input(BenchmarkId::new("served_4x64", QUERIES), &queries, |b, queries| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = queries
                        .chunks(QUERIES / 4)
                        .map(|part| {
                            let server = Arc::clone(&server);
                            scope.spawn(move || drive(&server, part, 64))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("submitter")).sum::<usize>()
                })
            })
        });
        server.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
