//! Property-based tests for the HDC substrate: encoder laws, binarization
//! invariants, and associative-memory behavior under arbitrary inputs.

use hd_linalg::{BitVector, Matrix};
use hdc::{BinaryAm, Encoder, FloatAm, IdLevelEncoder, RandomProjectionEncoder};
use proptest::prelude::*;

fn features(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..1.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Projection encoding is linear in the features: H(a·x) = a·H(x).
    #[test]
    fn projection_is_homogeneous(x in features(16), scale in 0.1f32..4.0) {
        let enc = RandomProjectionEncoder::new(16, 64, 3);
        let hx = enc.encode(&x).unwrap();
        let scaled: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let hs = enc.encode(&scaled).unwrap();
        for (a, b) in hx.iter().zip(&hs) {
            prop_assert!((a * scale - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    /// Projection encoding is additive: H(x + y) = H(x) + H(y).
    #[test]
    fn projection_is_additive(x in features(12), y in features(12)) {
        let enc = RandomProjectionEncoder::new(12, 48, 5);
        let hx = enc.encode(&x).unwrap();
        let hy = enc.encode(&y).unwrap();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let hsum = enc.encode(&sum).unwrap();
        for i in 0..48 {
            let expect = hx[i] + hy[i];
            prop_assert!((hsum[i] - expect).abs() <= 1e-3 * (1.0 + expect.abs()));
        }
    }

    /// Mean-threshold binarization never sets every bit (there is always a
    /// value <= the mean) and is invariant to uniform shifts.
    #[test]
    fn binarization_shift_invariant(x in features(10), shift in -5.0f32..5.0) {
        let enc = RandomProjectionEncoder::new(10, 96, 7);
        let h = enc.encode(&x).unwrap();
        let hb = BitVector::from_mean_threshold(&h);
        prop_assert!(hb.count_ones() < 96);
        let shifted: Vec<f32> = h.iter().map(|v| v + shift).collect();
        let hb2 = BitVector::from_mean_threshold(&shifted);
        prop_assert_eq!(hb, hb2);
    }

    /// ID-Level encoding maps equal inputs to equal hypervectors and stays
    /// within the ±f envelope per dimension.
    #[test]
    fn id_level_bounded(x in features(8)) {
        let enc = IdLevelEncoder::new(8, 64, 8, 11);
        let h = enc.encode(&x).unwrap();
        prop_assert_eq!(h.len(), 64);
        for &v in &h {
            prop_assert!(v.abs() <= 8.0 + 1e-6, "bundled value {v} out of envelope");
        }
        prop_assert_eq!(enc.encode(&x).unwrap(), h);
    }

    /// A query identical to a stored centroid always achieves that
    /// centroid's maximal possible score (its own popcount).
    #[test]
    fn self_query_maximizes_score(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 40), 1..6),
        pick in 0usize..6,
    ) {
        let centroids: Vec<(usize, BitVector)> = rows
            .iter()
            .map(|bits| (0usize, BitVector::from_bools(bits)))
            .collect();
        let n = centroids.len();
        let am = BinaryAm::from_centroids(1, centroids).unwrap();
        let target = pick % n;
        let q = am.centroid(target);
        let scores = am.scores(&q).unwrap();
        prop_assert_eq!(scores[target], q.count_ones());
        for &s in &scores {
            prop_assert!(s <= q.count_ones());
        }
    }

    /// center_and_normalize makes every non-constant row zero-mean and
    /// unit-norm; quantizing then splits each row near-evenly.
    #[test]
    fn center_normalize_invariants(
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 32), 1..5),
    ) {
        let centroids: Vec<(usize, Vec<f32>)> =
            rows.iter().map(|r| (0usize, r.clone())).collect();
        let mut am = FloatAm::from_centroids(1, centroids).unwrap();
        am.center_and_normalize();
        for (i, original) in rows.iter().enumerate() {
            let row = am.centroid(i);
            let constant = original.iter().all(|v| (v - original[0]).abs() < f32::EPSILON);
            if constant {
                continue; // centered constant rows are all-zero
            }
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            prop_assert!(mean.abs() < 1e-4, "row {i} mean {mean}");
            let norm = hd_linalg::l2_norm(row);
            prop_assert!((norm - 1.0).abs() < 1e-3, "row {i} norm {norm}");
        }
    }

    /// encode_dataset output rows agree with per-sample encoding for any
    /// feature matrix.
    #[test]
    fn encode_dataset_rowwise_agreement(
        rows in prop::collection::vec(features(6), 1..8),
    ) {
        let enc = RandomProjectionEncoder::new(6, 32, 13);
        let m = Matrix::from_rows(&rows).unwrap();
        let ds = hdc::encode_dataset(&enc, &m).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let expected = enc.encode(row).unwrap();
            prop_assert_eq!(ds.fp.row(i), expected.as_slice());
            prop_assert_eq!(&ds.bin[i], &enc.encode_binary(row).unwrap());
        }
    }

    /// search_batch returns identical hits (row, class, and score) to N
    /// independent calls of search, for any multi-centroid AM — including
    /// tail-word dimensionalities and score ties between centroids of
    /// different classes (the duplicated rows below force exact ties,
    /// which both paths must break toward the lower row).
    #[test]
    fn search_batch_equals_sequential_search(
        dim in prop::sample::select(vec![65usize, 128, 130]),
        k in 2usize..4,
        per_class in 1usize..4,
        queries in prop::collection::vec(prop::collection::vec(any::<bool>(), 130), 1..10),
        dup_first in any::<bool>(),
    ) {
        // Deterministic centroids with duplicates when dup_first is set:
        // the first centroid of every class is identical, so every query
        // ties across k rows and tie-breaking behavior is observable.
        let mut centroids = Vec::new();
        for class in 0..k {
            for s in 0..per_class {
                let bits: Vec<bool> = (0..dim)
                    .map(|d| {
                        if dup_first && s == 0 {
                            d % 2 == 0
                        } else {
                            (d * 7 + class * 13 + s * 29) % 5 < 2
                        }
                    })
                    .collect();
                centroids.push((class, BitVector::from_bools(&bits)));
            }
        }
        let am = BinaryAm::from_centroids(k, centroids).unwrap();
        let qvs: Vec<BitVector> = queries
            .iter()
            .map(|q| BitVector::from_bools(&q[..dim]))
            .collect();
        let batch = hd_linalg::QueryBatch::from_vectors(&qvs).unwrap();
        let results = am.search_batch(&batch).unwrap();
        prop_assert_eq!(results.len(), qvs.len());
        for (i, q) in qvs.iter().enumerate() {
            let single = am.search(q).unwrap();
            prop_assert_eq!(results.hit(i), &single, "query {}", i);
            prop_assert_eq!(results.scores(i), am.scores(q).unwrap().as_slice());
        }
        // classify_batch is the class projection of the same winners.
        let classes: Vec<usize> = am.classify_batch(&batch).unwrap();
        for (i, q) in qvs.iter().enumerate() {
            prop_assert_eq!(classes[i], am.classify(q).unwrap());
        }
    }

    /// encode_binary_batch packs exactly the per-row encode_binary
    /// results, for both encoder families.
    #[test]
    fn encode_binary_batch_equals_rowwise(
        rows in prop::collection::vec(features(6), 1..8),
    ) {
        let m = Matrix::from_rows(&rows).unwrap();
        let proj = RandomProjectionEncoder::new(6, 65, 17);
        let idlv = IdLevelEncoder::new(6, 64, 8, 17);
        let pb = proj.encode_binary_batch(&m).unwrap();
        let ib = idlv.encode_binary_batch(&m).unwrap();
        prop_assert_eq!(pb.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(pb.query(i), proj.encode_binary(row).unwrap());
            prop_assert_eq!(ib.query(i), idlv.encode_binary(row).unwrap());
        }
    }
}
