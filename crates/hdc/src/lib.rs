//! Hyperdimensional computing (HDC) substrate.
//!
//! This crate implements the two primary HDC modules the MEMHD paper builds
//! on (§II):
//!
//! * **Encoding module (EM)** — maps an `f`-dimensional feature vector to a
//!   `D`-dimensional hypervector. Two encoders are provided:
//!   [`RandomProjectionEncoder`] (`H = Mᵀ F`, Eq. 1 — MVM-compatible, used
//!   by BasicHDC and MEMHD) and [`IdLevelEncoder`] (ID ⊛ Level binding, used
//!   by the SearcHD/QuantHD/LeHDC baselines).
//! * **Associative memory (AM)** — stores class vectors and answers
//!   associative-search queries by dot similarity (Eq. 3).
//!   [`FloatAm`] holds the floating-point AM used during training;
//!   [`BinaryAm`] is the 1-bit quantized AM that maps onto IMC arrays and
//!   supports multi-centroid row labeling.
//!
//! Training routines for the *single-centroid* AM (single-pass accumulation
//! and iterative learning, §II-C) live in [`train`]; the multi-centroid
//! machinery that is the paper's contribution lives in the `memhd` crate.
//!
//! **Batched inference is the preferred entry point**: encode whole
//! feature matrices with [`Encoder::encode_binary_batch`] and answer them
//! with [`BinaryAm::search_batch`] / [`BinaryAm::classify_batch`] — one
//! tiled popcount sweep per batch, identical results to the per-query
//! methods.
//!
//! # Example
//!
//! ```
//! use hdc::{Encoder, RandomProjectionEncoder};
//!
//! // 4 input features -> 256-dimensional hypervectors.
//! let enc = RandomProjectionEncoder::new(4, 256, 42);
//! let h = enc.encode(&[0.2, 0.9, 0.1, 0.5]).unwrap();
//! assert_eq!(h.len(), 256);
//! let hb = enc.encode_binary(&[0.2, 0.9, 0.1, 0.5]).unwrap();
//! assert_eq!(hb.len(), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod am;
mod encoder;
mod error;
pub mod similarity;
mod text;
pub mod train;

pub use am::{BinaryAm, CascadeSearchResults, CentroidId, FloatAm, SearchHit, SearchResults};
pub use encoder::{
    encode_dataset, EncodedDataset, Encoder, IdLevelEncoder, RandomProjectionEncoder,
};
pub use error::{HdcError, Result};
pub use text::TextNgramEncoder;
