//! Error types for the HDC substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, HdcError>;

/// Errors produced by HDC encoding, memory, and training operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HdcError {
    /// A feature vector did not match the encoder's expected input width.
    FeatureWidthMismatch {
        /// Width the encoder was built for.
        expected: usize,
        /// Width actually supplied.
        found: usize,
    },
    /// A hypervector did not match the memory's dimensionality.
    DimensionMismatch {
        /// Dimensionality of the memory.
        expected: usize,
        /// Dimensionality supplied.
        found: usize,
    },
    /// A class label was outside the memory's class range.
    UnknownClass {
        /// The offending label.
        class: usize,
        /// Number of classes in the memory.
        num_classes: usize,
    },
    /// A training set was empty or labels disagreed with features.
    InvalidTrainingSet {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An invalid hyperparameter was supplied (e.g. zero dimensions).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// An underlying linear algebra operation failed.
    Linalg(hd_linalg::LinalgError),
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::FeatureWidthMismatch { expected, found } => {
                write!(f, "feature width mismatch: encoder expects {expected}, found {found}")
            }
            HdcError::DimensionMismatch { expected, found } => {
                write!(f, "hypervector dimension mismatch: expected {expected}, found {found}")
            }
            HdcError::UnknownClass { class, num_classes } => {
                write!(f, "class label {class} out of range for {num_classes} classes")
            }
            HdcError::InvalidTrainingSet { reason } => {
                write!(f, "invalid training set: {reason}")
            }
            HdcError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            HdcError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for HdcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HdcError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hd_linalg::LinalgError> for HdcError {
    fn from(e: hd_linalg::LinalgError) -> Self {
        HdcError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HdcError::FeatureWidthMismatch { expected: 784, found: 617 };
        assert!(e.to_string().contains("784"));
        let e = HdcError::UnknownClass { class: 12, num_classes: 10 };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn linalg_error_wraps_with_source() {
        use std::error::Error;
        let inner = hd_linalg::LinalgError::Empty { op: "mean" };
        let e: HdcError = inner.clone().into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("mean"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }
}
