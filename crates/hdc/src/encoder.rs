//! Hypervector encoders (paper §II-B).
//!
//! Two encoding families are implemented:
//!
//! * [`RandomProjectionEncoder`] — `H = Mᵀ F` with a binary random
//!   projection matrix `M ∈ {0,1}^{f×D}` (Eq. 1). Both the encoding and the
//!   subsequent associative search are MVMs, so this is the encoder MEMHD
//!   and BasicHDC map onto IMC arrays.
//! * [`IdLevelEncoder`] — each feature position gets a random binary *ID*
//!   hypervector and each quantized feature value a *Level* hypervector;
//!   the sample is `H = Σᵢ IDᵢ ⊛ L(xᵢ)` with bipolar binding (XNOR).
//!   Used by the SearcHD / QuantHD / LeHDC baselines.

use crate::error::{HdcError, Result};
use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::{BitMatrix, BitVector, Matrix, QueryBatch};
use rand::Rng;

/// A hypervector encoding module (EM).
///
/// Implementations map `input_width()`-dimensional feature vectors into
/// `dim()`-dimensional hypervectors. The floating-point form ([`encode`])
/// is used during training; the binarized form ([`encode_binary`]) is what
/// runs on the IMC array at inference time.
///
/// [`encode`]: Encoder::encode
/// [`encode_binary`]: Encoder::encode_binary
pub trait Encoder: Send + Sync {
    /// Number of input features `f` the encoder expects.
    fn input_width(&self) -> usize;

    /// Hypervector dimensionality `D`.
    fn dim(&self) -> usize;

    /// Encodes a feature vector into a floating-point hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureWidthMismatch`] if
    /// `features.len() != input_width()`.
    fn encode(&self, features: &[f32]) -> Result<Vec<f32>>;

    /// Encodes a feature vector into a binary hypervector.
    ///
    /// The default implementation binarizes the floating-point hypervector
    /// at its own mean — the same 1-bit quantization rule MEMHD applies to
    /// its associative memory (§III-B), keeping the query and memory
    /// distributions matched.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureWidthMismatch`] if
    /// `features.len() != input_width()`.
    fn encode_binary(&self, features: &[f32]) -> Result<BitVector> {
        Ok(BitVector::from_mean_threshold(&self.encode(features)?))
    }

    /// Encodes every row of `features` into binary hypervectors, packed as
    /// a [`QueryBatch`] ready for a batched associative search — the
    /// preferred inference-path entry point.
    ///
    /// The default implementation encodes rows in parallel across the
    /// machine's cores (same strategy as [`encode_dataset`] — encoding is
    /// the dominant cost of batched inference) and packs once at the end;
    /// implementations with a cheaper bulk path may override it.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureWidthMismatch`] if
    /// `features.cols() != input_width()` and
    /// [`HdcError::InvalidTrainingSet`] if `features` has no rows.
    fn encode_binary_batch(&self, features: &Matrix) -> Result<QueryBatch> {
        let n = features.rows();
        if n == 0 {
            return Err(HdcError::InvalidTrainingSet { reason: "no rows to encode".into() });
        }
        if features.cols() != self.input_width() {
            return Err(HdcError::FeatureWidthMismatch {
                expected: self.input_width(),
                found: features.cols(),
            });
        }
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
        let chunk = n.div_ceil(threads);
        let rows: Vec<&[f32]> = features.iter_rows().collect();
        let mut results: Vec<Result<Vec<BitVector>>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        slice.iter().map(|r| self.encode_binary(r)).collect::<Result<Vec<_>>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("encoder thread panicked"));
            }
        });
        let mut packed = BitMatrix::zeros(n, self.dim());
        let mut r = 0usize;
        for chunk_result in results {
            for hb in chunk_result? {
                packed.set_row(r, &hb)?;
                r += 1;
            }
        }
        Ok(QueryBatch::from_matrix(packed))
    }

    /// Memory the encoding module occupies, in bits (Table I).
    fn memory_bits(&self) -> u64;
}

/// Binary random-projection encoder: `H = Mᵀ F` (Eq. 1).
///
/// The projection matrix is stored transposed and bit-packed (`D` rows of
/// `f` bits), so one encoding is `D` selective sums over the feature
/// vector.
///
/// # Example
///
/// ```
/// use hdc::{Encoder, RandomProjectionEncoder};
///
/// let enc = RandomProjectionEncoder::new(16, 128, 7);
/// assert_eq!(enc.input_width(), 16);
/// assert_eq!(enc.dim(), 128);
/// assert_eq!(enc.memory_bits(), 16 * 128);
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjectionEncoder {
    /// Transposed projection: row `j` holds column `j` of `M` (`f` bits).
    projection_t: BitMatrix,
    input_width: usize,
    dim: usize,
}

impl RandomProjectionEncoder {
    /// Creates an encoder for `input_width` features into `dim` dimensions,
    /// with each projection bit drawn i.i.d. Bernoulli(½) from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `input_width == 0` or `dim == 0`.
    pub fn new(input_width: usize, dim: usize, seed: u64) -> Self {
        assert!(input_width > 0, "input_width must be positive");
        assert!(dim > 0, "dim must be positive");
        let mut rng = seeded(derive_seed(seed, 0x70726f6a)); // "proj"
        let mut projection_t = BitMatrix::zeros(dim, input_width);
        for j in 0..dim {
            for i in 0..input_width {
                if rng.gen::<bool>() {
                    projection_t.set(j, i, true);
                }
            }
        }
        RandomProjectionEncoder { projection_t, input_width, dim }
    }

    /// Borrows the transposed binary projection matrix (`D × f`), as mapped
    /// into the IMC encoding-module arrays.
    pub fn projection_t(&self) -> &BitMatrix {
        &self.projection_t
    }

    /// Reconstructs an encoder from an explicit transposed projection
    /// matrix (`D` rows of `f` bits) — the inverse of
    /// [`RandomProjectionEncoder::projection_t`], for deserialization.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if the matrix has zero rows
    /// or columns.
    pub fn from_projection_t(projection_t: BitMatrix) -> Result<Self> {
        let (dim, input_width) = projection_t.shape();
        if dim == 0 || input_width == 0 {
            return Err(HdcError::InvalidParameter {
                name: "projection_t",
                reason: format!("projection shape {dim}x{input_width} has a zero dimension"),
            });
        }
        Ok(RandomProjectionEncoder { projection_t, input_width, dim })
    }
}

impl Encoder for RandomProjectionEncoder {
    fn input_width(&self) -> usize {
        self.input_width
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>> {
        if features.len() != self.input_width {
            return Err(HdcError::FeatureWidthMismatch {
                expected: self.input_width,
                found: features.len(),
            });
        }
        Ok(self.projection_t.matvec_f32(features))
    }

    fn memory_bits(&self) -> u64 {
        self.input_width as u64 * self.dim as u64
    }
}

/// ID-Level encoder: `H = Σᵢ IDᵢ ⊛ L(xᵢ)` (paper §II-B).
///
/// Feature values are expected in `[0, 1]` (values outside are clamped) and
/// quantized to `levels` level hypervectors generated by progressive bit
/// flipping, so adjacent levels are similar and extreme levels are nearly
/// orthogonal. Binding is bipolar multiplication (XNOR on bits) and the
/// bundle accumulates `±1` contributions per dimension.
#[derive(Debug, Clone)]
pub struct IdLevelEncoder {
    ids: Vec<BitVector>,
    levels: Vec<BitVector>,
    input_width: usize,
    dim: usize,
}

impl IdLevelEncoder {
    /// Creates an ID-Level encoder with `levels` quantization levels.
    ///
    /// The paper's baselines use `L = 256`.
    ///
    /// # Panics
    ///
    /// Panics if `input_width`, `dim`, or `levels` is zero, or if
    /// `levels == 1` (at least two levels are required to span a range).
    pub fn new(input_width: usize, dim: usize, levels: usize, seed: u64) -> Self {
        assert!(input_width > 0, "input_width must be positive");
        assert!(dim > 0, "dim must be positive");
        assert!(levels >= 2, "need at least two levels");
        let mut rng = seeded(derive_seed(seed, 0x69646c76)); // "idlv"
        let ids = (0..input_width)
            .map(|_| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                BitVector::from_bools(&bits)
            })
            .collect();

        // Base level, then flip a fixed prefix of a random permutation so
        // that level l and level m differ in |l-m| * D/(2(L-1)) bits:
        // adjacent levels correlate, the extremes are ~orthogonal.
        let base_bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
        let mut perm: Vec<usize> = (0..dim).collect();
        // Fisher–Yates shuffle.
        for i in (1..dim).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let max_flips = dim / 2;
        let mut level_vecs = Vec::with_capacity(levels);
        for l in 0..levels {
            let flips = max_flips * l / (levels - 1);
            let mut bits = base_bits.clone();
            for &idx in perm.iter().take(flips) {
                bits[idx] = !bits[idx];
            }
            level_vecs.push(BitVector::from_bools(&bits));
        }

        IdLevelEncoder { ids, levels: level_vecs, input_width, dim }
    }

    /// Number of quantization levels `L`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Maps a feature value in `[0,1]` (clamped) to its level index.
    pub fn level_index(&self, value: f32) -> usize {
        let clamped = value.clamp(0.0, 1.0);
        let idx = (clamped * (self.levels.len() - 1) as f32).round() as usize;
        idx.min(self.levels.len() - 1)
    }
}

impl Encoder for IdLevelEncoder {
    fn input_width(&self) -> usize {
        self.input_width
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>> {
        if features.len() != self.input_width {
            return Err(HdcError::FeatureWidthMismatch {
                expected: self.input_width,
                found: features.len(),
            });
        }
        let mut acc = vec![0.0f32; self.dim];
        for (i, &x) in features.iter().enumerate() {
            let level = &self.levels[self.level_index(x)];
            let id = &self.ids[i];
            // Bipolar binding: bit j of the bound vector is XNOR(id_j, lvl_j);
            // accumulate +1 for a set bound bit, -1 otherwise.
            for (w, (&idw, &lvw)) in id.as_words().iter().zip(level.as_words()).enumerate() {
                let bound = !(idw ^ lvw);
                let base = w * 64;
                let end = (base + 64).min(self.dim);
                for (offset, slot) in acc[base..end].iter_mut().enumerate() {
                    if (bound >> offset) & 1 == 1 {
                        *slot += 1.0;
                    } else {
                        *slot -= 1.0;
                    }
                }
            }
        }
        Ok(acc)
    }

    fn encode_binary(&self, features: &[f32]) -> Result<BitVector> {
        // Bundled sums are symmetric around zero, so the majority rule
        // (threshold at 0) is the natural binarization here.
        Ok(BitVector::from_threshold(&self.encode(features)?, 0.0))
    }

    fn memory_bits(&self) -> u64 {
        (self.input_width as u64 + self.levels.len() as u64) * self.dim as u64
    }
}

/// A dataset encoded into hypervector space.
///
/// Holds both the floating-point hypervectors (used for clustering and FP
/// updates during training) and their binarized forms (used for similarity
/// evaluation against the binary AM and for inference).
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// `n × D` floating-point hypervectors, one row per sample.
    pub fp: Matrix,
    /// Binarized hypervectors, parallel to the rows of `fp`.
    pub bin: Vec<BitVector>,
}

impl EncodedDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.bin.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bin.is_empty()
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.fp.cols()
    }

    /// Packs the binarized hypervectors into a [`QueryBatch`] for batched
    /// associative search. Pack once per sweep (e.g. before a training
    /// epoch loop), then reuse the batch.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidTrainingSet`] if the set is empty.
    pub fn to_query_batch(&self) -> Result<QueryBatch> {
        QueryBatch::from_vectors(&self.bin)
            .map_err(|e| HdcError::InvalidTrainingSet { reason: e.to_string() })
    }
}

/// Encodes every row of `features` with `encoder`, in parallel across the
/// machine's cores.
///
/// # Errors
///
/// Returns [`HdcError::FeatureWidthMismatch`] if the feature width does not
/// match the encoder, or [`HdcError::InvalidTrainingSet`] if `features` is
/// empty.
pub fn encode_dataset<E: Encoder + ?Sized>(
    encoder: &E,
    features: &Matrix,
) -> Result<EncodedDataset> {
    if features.rows() == 0 {
        return Err(HdcError::InvalidTrainingSet { reason: "no samples to encode".into() });
    }
    if features.cols() != encoder.input_width() {
        return Err(HdcError::FeatureWidthMismatch {
            expected: encoder.input_width(),
            found: features.cols(),
        });
    }
    let n = features.rows();
    let dim = encoder.dim();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    let chunk = n.div_ceil(threads);

    type EncodedPair = (Vec<f32>, BitVector);
    let rows: Vec<&[f32]> = features.iter_rows().collect();
    let mut results: Vec<Result<Vec<EncodedPair>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|r| {
                            let fp = encoder.encode(r)?;
                            let bin = encoder.encode_binary(r)?;
                            Ok((fp, bin))
                        })
                        .collect::<Result<Vec<_>>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("encoder thread panicked"));
        }
    });

    let mut fp_flat = Vec::with_capacity(n * dim);
    let mut bin = Vec::with_capacity(n);
    for res in results {
        for (fp_row, b) in res? {
            fp_flat.extend_from_slice(&fp_row);
            bin.push(b);
        }
    }
    Ok(EncodedDataset { fp: Matrix::from_vec(n, dim, fp_flat)?, bin })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_encoder_deterministic() {
        let a = RandomProjectionEncoder::new(8, 64, 5);
        let b = RandomProjectionEncoder::new(8, 64, 5);
        let x = [0.1, 0.5, 0.9, 0.2, 0.3, 0.8, 0.4, 0.6];
        assert_eq!(a.encode(&x).unwrap(), b.encode(&x).unwrap());
    }

    #[test]
    fn projection_encoder_seed_sensitivity() {
        let a = RandomProjectionEncoder::new(8, 64, 5);
        let b = RandomProjectionEncoder::new(8, 64, 6);
        let x = [0.1, 0.5, 0.9, 0.2, 0.3, 0.8, 0.4, 0.6];
        assert_ne!(a.encode(&x).unwrap(), b.encode(&x).unwrap());
    }

    #[test]
    fn projection_encode_is_selective_sum() {
        let enc = RandomProjectionEncoder::new(4, 16, 1);
        let x = [1.0, 2.0, 4.0, 8.0];
        let h = enc.encode(&x).unwrap();
        for (j, &hj) in h.iter().enumerate() {
            let expected: f32 =
                (0..4).filter(|&i| enc.projection_t().get(j, i)).map(|i| x[i]).sum();
            assert_eq!(hj, expected);
        }
    }

    #[test]
    fn projection_width_mismatch() {
        let enc = RandomProjectionEncoder::new(4, 16, 1);
        assert!(matches!(
            enc.encode(&[1.0, 2.0]),
            Err(HdcError::FeatureWidthMismatch { expected: 4, found: 2 })
        ));
    }

    #[test]
    fn binary_encoding_len() {
        let enc = RandomProjectionEncoder::new(4, 33, 1);
        let hb = enc.encode_binary(&[0.3, 0.4, 0.5, 0.6]).unwrap();
        assert_eq!(hb.len(), 33);
    }

    #[test]
    fn id_level_levels_are_progressive() {
        let enc = IdLevelEncoder::new(4, 512, 8, 3);
        // Distance between level 0 and level l grows monotonically in l.
        let l0 = &enc.levels[0];
        let mut prev = 0;
        for l in 1..8 {
            let d = l0.hamming(&enc.levels[l]);
            assert!(d >= prev, "level {l}: distance {d} < previous {prev}");
            prev = d;
        }
        // Extremes are ~D/2 apart (near orthogonal).
        let extreme = l0.hamming(&enc.levels[7]);
        assert!((extreme as i64 - 256).abs() <= 16, "extreme distance {extreme}");
    }

    #[test]
    fn id_level_similar_inputs_similar_codes() {
        let enc = IdLevelEncoder::new(16, 1024, 32, 11);
        let x: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
        let mut y = x.clone();
        y[3] += 0.02; // tiny perturbation
        let mut z: Vec<f32> = x.iter().map(|v| 1.0 - v).collect(); // very different
        z[0] = 0.9;
        let hx = enc.encode_binary(&x).unwrap();
        let hy = enc.encode_binary(&y).unwrap();
        let hz = enc.encode_binary(&z).unwrap();
        assert!(hx.hamming(&hy) < hx.hamming(&hz));
    }

    #[test]
    fn id_level_level_index_clamps() {
        let enc = IdLevelEncoder::new(2, 64, 4, 1);
        assert_eq!(enc.level_index(-1.0), 0);
        assert_eq!(enc.level_index(2.0), 3);
        assert_eq!(enc.level_index(0.5), 2); // rounds
    }

    #[test]
    fn memory_bits_formulas() {
        // Table I: projection EM = f*D; ID-Level EM = (f+L)*D.
        let p = RandomProjectionEncoder::new(784, 1024, 0);
        assert_eq!(p.memory_bits(), 784 * 1024);
        let i = IdLevelEncoder::new(784, 1024, 256, 0);
        assert_eq!(i.memory_bits(), (784 + 256) * 1024);
    }

    #[test]
    fn encode_dataset_parallel_matches_serial() {
        let enc = RandomProjectionEncoder::new(6, 128, 9);
        let rows: Vec<Vec<f32>> =
            (0..37).map(|i| (0..6).map(|j| ((i * 7 + j) % 10) as f32 / 10.0).collect()).collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let ds = encode_dataset(&enc, &m).unwrap();
        assert_eq!(ds.len(), 37);
        assert_eq!(ds.dim(), 128);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(ds.fp.row(i), enc.encode(row).unwrap().as_slice());
            assert_eq!(ds.bin[i], enc.encode_binary(row).unwrap());
        }
    }

    #[test]
    fn encode_dataset_empty_rejected() {
        let enc = RandomProjectionEncoder::new(6, 32, 9);
        let m = Matrix::zeros(0, 6);
        assert!(encode_dataset(&enc, &m).is_err());
    }

    #[test]
    fn encode_dataset_width_mismatch_rejected() {
        let enc = RandomProjectionEncoder::new(6, 32, 9);
        let m = Matrix::zeros(3, 5);
        assert!(matches!(encode_dataset(&enc, &m), Err(HdcError::FeatureWidthMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn id_level_one_level_panics() {
        IdLevelEncoder::new(2, 8, 1, 0);
    }
}
