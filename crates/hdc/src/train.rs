//! Training routines for single-centroid associative memories (paper §II-C).
//!
//! These are the classic HDC learning rules the baselines build on:
//!
//! * [`single_pass`] — `C_k = Σᵢ H_k^i`: accumulate every sample
//!   hypervector into its class vector in one pass.
//! * [`iterative`] — perceptron-style refinement on the floating-point AM
//!   (Eq. 2): on misprediction, pull the true class vector toward the
//!   sample and push the predicted one away.
//! * [`quantization_aware`] — QuantHD-style training: similarity is
//!   evaluated against the *binary* AM with *binary* queries (exactly what
//!   inference will do), updates land on the FP shadow AM, and the binary
//!   AM is refreshed by re-binarizing each epoch.
//!
//! The multi-centroid extension with update-target selection (Eqs. 4–6) is
//! in the `memhd` crate.

use crate::am::{BinaryAm, FloatAm};
use crate::encoder::EncodedDataset;
use crate::error::{HdcError, Result};
use hd_linalg::argmax;

fn check_labels(encoded: &EncodedDataset, labels: &[usize], num_classes: usize) -> Result<()> {
    if encoded.is_empty() {
        return Err(HdcError::InvalidTrainingSet { reason: "empty training set".into() });
    }
    if encoded.len() != labels.len() {
        return Err(HdcError::InvalidTrainingSet {
            reason: format!("{} samples but {} labels", encoded.len(), labels.len()),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
        return Err(HdcError::UnknownClass { class: bad, num_classes });
    }
    Ok(())
}

/// Single-pass training: `C_k = Σ_{i: label=k} H_k^i`.
///
/// # Errors
///
/// Returns [`HdcError::InvalidTrainingSet`] for an empty set or mismatched
/// label count, and [`HdcError::UnknownClass`] for an out-of-range label.
pub fn single_pass(
    encoded: &EncodedDataset,
    labels: &[usize],
    num_classes: usize,
) -> Result<FloatAm> {
    check_labels(encoded, labels, num_classes)?;
    let mut am = FloatAm::zeroed_single_centroid(num_classes, encoded.dim());
    for (i, &label) in labels.iter().enumerate() {
        am.update(label, 1.0, encoded.fp.row(i))?;
    }
    Ok(am)
}

/// One epoch of floating-point iterative learning (Eq. 2).
///
/// For every misclassified sample (by FP dot similarity), applies
/// `C_true += α·H` and `C_pred −= α·H`. Returns the number of updates
/// (mispredictions) performed.
///
/// # Errors
///
/// Returns the same validation errors as [`single_pass`], plus
/// [`HdcError::DimensionMismatch`] if the AM and encoding disagree on `D`.
pub fn iterative_epoch(
    am: &mut FloatAm,
    encoded: &EncodedDataset,
    labels: &[usize],
    alpha: f32,
) -> Result<usize> {
    check_labels(encoded, labels, am.num_classes())?;
    let mut updates = 0;
    for (i, &label) in labels.iter().enumerate() {
        let h = encoded.fp.row(i);
        let scores = am.scores(h)?;
        let pred_row = argmax(&scores).expect("AM has at least one centroid");
        let pred = am.class_of(pred_row);
        if pred != label {
            // Single-centroid layout: row index == class label.
            am.update(label, alpha, h)?;
            am.update(pred_row, -alpha, h)?;
            updates += 1;
        }
    }
    Ok(updates)
}

/// Runs [`iterative_epoch`] for `epochs` epochs (or until an epoch makes
/// zero updates) and returns the per-epoch update counts.
///
/// # Errors
///
/// Propagates errors from [`iterative_epoch`].
pub fn iterative(
    am: &mut FloatAm,
    encoded: &EncodedDataset,
    labels: &[usize],
    alpha: f32,
    epochs: usize,
) -> Result<Vec<usize>> {
    let mut history = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let updates = iterative_epoch(am, encoded, labels, alpha)?;
        history.push(updates);
        if updates == 0 {
            break;
        }
    }
    Ok(history)
}

/// Per-epoch record emitted by [`quantization_aware`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QatEpoch {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mispredictions (= updates) during the epoch.
    pub updates: usize,
    /// Training accuracy of the *binary* AM measured during the epoch.
    pub train_accuracy: f64,
}

/// Quantization-aware iterative training for a single-centroid AM
/// (QuantHD \[13\]): evaluate with the binary AM on binary queries, update
/// the FP AM, re-binarize after each epoch.
///
/// Returns the final binary AM and the per-epoch history. Stops early if an
/// epoch makes zero updates.
///
/// # Errors
///
/// Returns the same validation errors as [`single_pass`].
pub fn quantization_aware(
    fp_am: &mut FloatAm,
    encoded: &EncodedDataset,
    labels: &[usize],
    alpha: f32,
    epochs: usize,
) -> Result<(BinaryAm, Vec<QatEpoch>)> {
    check_labels(encoded, labels, fp_am.num_classes())?;
    // The binary AM is constant within an epoch (it is re-quantized only
    // at the epoch boundary), so the whole epoch's associative searches
    // batch into one tiled sweep; updates then replay in sample order.
    // The score matrix is allocated once and reused across epochs.
    let batch = encoded.to_query_batch()?;
    let mut binary = fp_am.quantize();
    let mut scores = hd_linalg::ScoreMatrix::zeros(0, 0);
    let mut history = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        binary.scores_batch_into(&batch, &mut scores)?;
        let mut updates = 0;
        let mut correct = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            let (pred_row, _) = hd_linalg::argmax_u32(scores.scores(i));
            if binary.class_of(pred_row) == label {
                correct += 1;
            } else {
                let h = encoded.fp.row(i);
                fp_am.update(label, alpha, h)?;
                fp_am.update(pred_row, -alpha, h)?;
                updates += 1;
            }
        }
        binary = fp_am.quantize();
        history.push(QatEpoch {
            epoch,
            updates,
            train_accuracy: correct as f64 / labels.len() as f64,
        });
        if updates == 0 {
            break;
        }
    }
    Ok((binary, history))
}

/// Classifies every query with `am` and returns the predictions.
///
/// Packs the queries once and runs the batched search kernel; identical
/// to calling [`BinaryAm::classify`] per query.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] if a query width disagrees with
/// the AM.
pub fn predict_all(am: &BinaryAm, queries: &[hd_linalg::BitVector]) -> Result<Vec<usize>> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let batch = hd_linalg::QueryBatch::from_vectors(queries)
        .map_err(|e| HdcError::InvalidTrainingSet { reason: e.to_string() })?;
    am.classify_batch(&batch)
}

/// Classifies every query of an already-packed batch (avoids re-packing
/// when the same query set is evaluated repeatedly, e.g. per epoch).
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] if the batch width disagrees
/// with the AM.
pub fn predict_batch(am: &BinaryAm, batch: &hd_linalg::QueryBatch) -> Result<Vec<usize>> {
    am.classify_batch(batch)
}

/// Test-set accuracy of a binary AM.
///
/// # Errors
///
/// Returns [`HdcError::InvalidTrainingSet`] if `queries` and `labels`
/// disagree in length or are empty, or a dimension error from the search.
pub fn evaluate(am: &BinaryAm, queries: &[hd_linalg::BitVector], labels: &[usize]) -> Result<f64> {
    if queries.is_empty() || queries.len() != labels.len() {
        return Err(HdcError::InvalidTrainingSet {
            reason: format!("{} queries vs {} labels", queries.len(), labels.len()),
        });
    }
    let preds = predict_all(am, queries)?;
    Ok(hd_linalg::stats::accuracy(&preds, labels))
}

/// Test-set accuracy over an already-packed query batch.
///
/// # Errors
///
/// Returns [`HdcError::InvalidTrainingSet`] if `batch` and `labels`
/// disagree in length or are empty, or a dimension error from the search.
pub fn evaluate_batch(
    am: &BinaryAm,
    batch: &hd_linalg::QueryBatch,
    labels: &[usize],
) -> Result<f64> {
    if batch.is_empty() || batch.len() != labels.len() {
        return Err(HdcError::InvalidTrainingSet {
            reason: format!("{} queries vs {} labels", batch.len(), labels.len()),
        });
    }
    let preds = predict_batch(am, batch)?;
    Ok(hd_linalg::stats::accuracy(&preds, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_dataset, RandomProjectionEncoder};
    use hd_linalg::rng::{seeded, Normal};
    use hd_linalg::Matrix;
    use rand::Rng;

    /// Two well-separated Gaussian blobs in 8-D feature space.
    fn toy_problem(n_per_class: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = seeded(seed);
        let noise = Normal::new(0.0, 0.08);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let base = if class == 0 { 0.25 } else { 0.75 };
                let row: Vec<f32> = (0..8)
                    .map(|j| {
                        let wiggle = if j % 2 == class { 0.15 } else { -0.15 };
                        (base + wiggle + noise.sample(&mut rng)).clamp(0.0, 1.0)
                    })
                    .collect();
                rows.push(row);
                labels.push(class);
            }
        }
        // Shuffle to interleave classes.
        for i in (1..rows.len()).rev() {
            let j = rng.gen_range(0..=i);
            rows.swap(i, j);
            labels.swap(i, j);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn single_pass_sums_by_class() {
        let enc = RandomProjectionEncoder::new(8, 64, 3);
        let (x, y) = toy_problem(10, 42);
        let ds = encode_dataset(&enc, &x).unwrap();
        let am = single_pass(&ds, &y, 2).unwrap();
        // Class vector must equal the sum of its samples' hypervectors.
        let mut expected = vec![0.0f32; 64];
        for (i, &label) in y.iter().enumerate() {
            if label == 0 {
                for (e, v) in expected.iter_mut().zip(ds.fp.row(i)) {
                    *e += v;
                }
            }
        }
        assert_eq!(am.centroid(0), expected.as_slice());
    }

    #[test]
    fn single_pass_validates() {
        let enc = RandomProjectionEncoder::new(8, 32, 3);
        let (x, mut y) = toy_problem(3, 1);
        let ds = encode_dataset(&enc, &x).unwrap();
        assert!(single_pass(&ds, &y[..3], 2).is_err()); // label count mismatch
        y[0] = 9;
        assert!(matches!(single_pass(&ds, &y, 2), Err(HdcError::UnknownClass { .. })));
    }

    #[test]
    fn iterative_reduces_errors() {
        let enc = RandomProjectionEncoder::new(8, 256, 3);
        let (x, y) = toy_problem(40, 7);
        let ds = encode_dataset(&enc, &x).unwrap();
        let mut am = single_pass(&ds, &y, 2).unwrap();
        let history = iterative(&mut am, &ds, &y, 0.05, 20).unwrap();
        assert!(!history.is_empty());
        // Errors at the end should not exceed errors at the start.
        assert!(history.last().unwrap() <= history.first().unwrap());
    }

    #[test]
    fn quantization_aware_learns_separable_problem() {
        let enc = RandomProjectionEncoder::new(8, 256, 3);
        let (x, y) = toy_problem(40, 11);
        let ds = encode_dataset(&enc, &x).unwrap();
        let mut fp = single_pass(&ds, &y, 2).unwrap();
        let (bam, history) = quantization_aware(&mut fp, &ds, &y, 0.05, 30).unwrap();
        assert!(!history.is_empty());
        let acc = evaluate(&bam, &ds.bin, &y).unwrap();
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn evaluate_checks_lengths() {
        let enc = RandomProjectionEncoder::new(8, 32, 3);
        let (x, y) = toy_problem(5, 2);
        let ds = encode_dataset(&enc, &x).unwrap();
        let am = single_pass(&ds, &y, 2).unwrap().quantize();
        assert!(evaluate(&am, &ds.bin, &y[..4]).is_err());
        assert!(evaluate(&am, &[], &[]).is_err());
    }

    #[test]
    fn predict_all_matches_classify() {
        let enc = RandomProjectionEncoder::new(8, 64, 3);
        let (x, y) = toy_problem(6, 5);
        let ds = encode_dataset(&enc, &x).unwrap();
        let am = single_pass(&ds, &y, 2).unwrap().quantize();
        let preds = predict_all(&am, &ds.bin).unwrap();
        for (i, q) in ds.bin.iter().enumerate() {
            assert_eq!(preds[i], am.classify(q).unwrap());
        }
    }
}
