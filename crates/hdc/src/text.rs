//! N-gram text encoding — the language-processing workload the paper's
//! introduction cites (Rahimi et al., "A Robust and Energy-Efficient
//! Classifier Using Brain-Inspired Hyperdimensional Computing").
//!
//! Each symbol gets a random binary hypervector; an n-gram binds its
//! symbols with position-marking rotations and XOR
//! (`G = ρ^{n-1}(s₁) ⊕ … ⊕ ρ(s_{n-1}) ⊕ s_n`), and a text bundles all of
//! its n-grams by bipolar majority. The result is a hypervector in exactly
//! the same space the associative memories consume, so MEMHD's
//! multi-centroid pipeline (`memhd::init` / `memhd::train`) runs on text
//! unchanged — see the `language_identification` example.

use crate::error::{HdcError, Result};
use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::BitVector;
use rand::Rng;

/// Encodes lowercase text into hypervectors via rotated-XOR n-grams.
///
/// The alphabet is `a–z` plus space; all other characters are treated as
/// spaces. Texts shorter than `n` symbols cannot be encoded.
///
/// # Example
///
/// ```
/// use hdc::TextNgramEncoder;
///
/// # fn main() -> hdc::Result<()> {
/// let enc = TextNgramEncoder::new(3, 1024, 7)?;
/// let a = enc.encode_binary("the quick brown fox")?;
/// let b = enc.encode_binary("the quick brown fox")?;
/// assert_eq!(a, b); // deterministic
/// assert_eq!(a.len(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TextNgramEncoder {
    symbols: Vec<BitVector>,
    n: usize,
    dim: usize,
}

/// Number of symbols: `a–z` + space.
const ALPHABET: usize = 27;

impl TextNgramEncoder {
    /// Creates an encoder for `n`-grams in `dim`-dimensional space.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `n == 0` or `dim == 0`.
    pub fn new(n: usize, dim: usize, seed: u64) -> Result<Self> {
        if n == 0 {
            return Err(HdcError::InvalidParameter {
                name: "n",
                reason: "n-gram size must be positive".into(),
            });
        }
        if dim == 0 {
            return Err(HdcError::InvalidParameter {
                name: "dim",
                reason: "dimensionality must be positive".into(),
            });
        }
        let mut rng = seeded(derive_seed(seed, 0x7465_7874)); // "text"
        let symbols = (0..ALPHABET)
            .map(|_| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                BitVector::from_bools(&bits)
            })
            .collect();
        Ok(TextNgramEncoder { symbols, n, dim })
    }

    /// N-gram size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn symbol_index(c: char) -> usize {
        match c {
            'a'..='z' => c as usize - 'a' as usize,
            _ => 26, // everything else maps to the space symbol
        }
    }

    /// Encodes text into a floating-point hypervector: the bipolar bundle
    /// of all its n-grams (each dimension holds `#ones − #zeros` across
    /// the bound n-gram vectors).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidTrainingSet`] if the text has fewer than
    /// `n` symbols.
    pub fn encode(&self, text: &str) -> Result<Vec<f32>> {
        let symbols: Vec<usize> = text.to_lowercase().chars().map(Self::symbol_index).collect();
        if symbols.len() < self.n {
            return Err(HdcError::InvalidTrainingSet {
                reason: format!(
                    "text of {} symbols is shorter than the n-gram size {}",
                    symbols.len(),
                    self.n
                ),
            });
        }
        let mut acc = vec![0.0f32; self.dim];
        for window in symbols.windows(self.n) {
            // G = ρ^{n-1}(s1) ⊕ ... ⊕ ρ(s_{n-1}) ⊕ s_n
            let mut gram = self.symbols[window[0]].rotate_left(self.n - 1);
            for (offset, &s) in window.iter().enumerate().skip(1) {
                gram = gram.xor(&self.symbols[s].rotate_left(self.n - 1 - offset));
            }
            for (j, a) in acc.iter_mut().enumerate() {
                *a += if gram.get(j) { 1.0 } else { -1.0 };
            }
        }
        Ok(acc)
    }

    /// Encodes text into a binary hypervector by majority rule (bundled
    /// sums are symmetric around zero).
    ///
    /// # Errors
    ///
    /// Same as [`TextNgramEncoder::encode`].
    pub fn encode_binary(&self, text: &str) -> Result<BitVector> {
        Ok(BitVector::from_threshold(&self.encode(text)?, 0.0))
    }

    /// Encodes a batch of texts into an [`crate::EncodedDataset`] ready for
    /// the associative-memory training APIs.
    ///
    /// # Errors
    ///
    /// Fails on the first text shorter than `n` symbols, or if `texts` is
    /// empty.
    pub fn encode_corpus<S: AsRef<str>>(&self, texts: &[S]) -> Result<crate::EncodedDataset> {
        if texts.is_empty() {
            return Err(HdcError::InvalidTrainingSet { reason: "empty corpus".into() });
        }
        let mut flat = Vec::with_capacity(texts.len() * self.dim);
        let mut bin = Vec::with_capacity(texts.len());
        for t in texts {
            let fp = self.encode(t.as_ref())?;
            bin.push(BitVector::from_threshold(&fp, 0.0));
            flat.extend_from_slice(&fp);
        }
        Ok(crate::EncodedDataset {
            fp: hd_linalg::Matrix::from_vec(texts.len(), self.dim, flat)?,
            bin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let enc = TextNgramEncoder::new(3, 256, 1).unwrap();
        let a = enc.encode("hello world").unwrap();
        let b = enc.encode("hello world").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 256);
        assert_eq!(enc.n(), 3);
        assert_eq!(enc.dim(), 256);
    }

    #[test]
    fn case_and_punctuation_normalized() {
        let enc = TextNgramEncoder::new(2, 128, 2).unwrap();
        assert_eq!(enc.encode("Hello").unwrap(), enc.encode("hello").unwrap());
        // Punctuation behaves like a space.
        assert_eq!(enc.encode("a,b").unwrap(), enc.encode("a b").unwrap());
    }

    #[test]
    fn similar_texts_closer_than_different() {
        let enc = TextNgramEncoder::new(3, 2048, 3).unwrap();
        let base = enc.encode_binary("the cat sat on the mat and purred").unwrap();
        let near = enc.encode_binary("the cat sat on the mat and slept").unwrap();
        let far = enc.encode_binary("zyx wvu tsr qpo nml kji hgf edc").unwrap();
        assert!(base.hamming(&near) < base.hamming(&far));
    }

    #[test]
    fn ngram_order_matters() {
        let enc = TextNgramEncoder::new(3, 1024, 4).unwrap();
        let ab = enc.encode_binary("abcabcabcabc").unwrap();
        let ba = enc.encode_binary("cbacbacbacba").unwrap();
        // Reversed trigrams should look (near-)random relative to forward.
        let d = ab.hamming(&ba) as f64 / 1024.0;
        assert!(d > 0.3, "reversed text too similar: {d}");
    }

    #[test]
    fn too_short_text_rejected() {
        let enc = TextNgramEncoder::new(4, 64, 5).unwrap();
        assert!(enc.encode("abc").is_err());
        assert!(enc.encode("abcd").is_ok());
    }

    #[test]
    fn corpus_encoding_matches_single() {
        let enc = TextNgramEncoder::new(2, 128, 6).unwrap();
        let texts = ["hello there", "general kenobi"];
        let ds = enc.encode_corpus(&texts).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.fp.row(0), enc.encode(texts[0]).unwrap().as_slice());
        assert_eq!(ds.bin[1], enc.encode_binary(texts[1]).unwrap());
        let empty: [&str; 0] = [];
        assert!(enc.encode_corpus(&empty).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TextNgramEncoder::new(0, 64, 1).is_err());
        assert!(TextNgramEncoder::new(3, 0, 1).is_err());
    }
}
