//! Associative memory (AM) structures (paper §II-A, §II-D).
//!
//! An associative memory stores class vectors and answers queries by
//! similarity. Both the floating-point training AM and the 1-bit quantized
//! inference AM support **multi-centroid** layouts: each stored vector (one
//! IMC column in the paper's mapping; one row here) is tagged with the
//! class it represents and a sub-label distinguishing centroids of the same
//! class. A traditional single-vector-per-class HDC model is simply the
//! special case of one centroid per class.

use crate::error::{HdcError, Result};
use hd_linalg::{
    BitMatrix, BitVector, CascadePlan, CascadeStats, Matrix, QueryBatch, ScoreMatrix, SearchMemory,
};

/// Identifies one centroid: the class it belongs to plus a per-class
/// sub-label (paper notation: class index `j`, sub-label `i` in Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CentroidId {
    /// Class label.
    pub class: usize,
    /// Sub-label within the class (0-based).
    pub sub: usize,
}

impl std::fmt::Display for CentroidId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class {} / centroid {}", self.class, self.sub)
    }
}

/// Floating-point associative memory — the training-time "shadow" AM.
///
/// Rows are centroids; `class_of(row)` maps a row back to its class. MEMHD
/// keeps this FP AM alongside the binary AM during quantization-aware
/// iterative learning (§III-C): vector updates land here, and the binary AM
/// is refreshed by re-binarizing.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatAm {
    vectors: Matrix,
    classes: Vec<usize>,
    num_classes: usize,
}

impl FloatAm {
    /// Builds an AM from per-centroid `(class, vector)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidTrainingSet`] if `centroids` is empty or
    /// vectors have inconsistent dimensionality, and
    /// [`HdcError::UnknownClass`] if a class label is `>= num_classes`.
    pub fn from_centroids(num_classes: usize, centroids: Vec<(usize, Vec<f32>)>) -> Result<Self> {
        if centroids.is_empty() {
            return Err(HdcError::InvalidTrainingSet { reason: "no centroids supplied".into() });
        }
        let dim = centroids[0].1.len();
        let mut classes = Vec::with_capacity(centroids.len());
        let mut flat = Vec::with_capacity(centroids.len() * dim);
        for (class, v) in &centroids {
            if *class >= num_classes {
                return Err(HdcError::UnknownClass { class: *class, num_classes });
            }
            if v.len() != dim {
                return Err(HdcError::DimensionMismatch { expected: dim, found: v.len() });
            }
            classes.push(*class);
            flat.extend_from_slice(v);
        }
        Ok(FloatAm { vectors: Matrix::from_vec(centroids.len(), dim, flat)?, classes, num_classes })
    }

    /// Creates a zeroed AM with exactly one centroid per class — the
    /// traditional single-centroid HDC layout.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `dim == 0`.
    pub fn zeroed_single_centroid(num_classes: usize, dim: usize) -> Self {
        assert!(num_classes > 0 && dim > 0, "num_classes and dim must be positive");
        FloatAm {
            vectors: Matrix::zeros(num_classes, dim),
            classes: (0..num_classes).collect(),
            num_classes,
        }
    }

    /// Number of stored centroids (`C` in the paper: IMC columns in use).
    pub fn num_centroids(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// Class owning centroid row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_centroids()`.
    pub fn class_of(&self, row: usize) -> usize {
        self.classes[row]
    }

    /// The [`CentroidId`] of a row (class plus sub-label position).
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_centroids()`.
    pub fn id_of(&self, row: usize) -> CentroidId {
        let class = self.classes[row];
        let sub = self.classes[..row].iter().filter(|&&c| c == class).count();
        CentroidId { class, sub }
    }

    /// Row indices of all centroids belonging to `class`.
    pub fn rows_of_class(&self, class: usize) -> Vec<usize> {
        self.classes.iter().enumerate().filter_map(|(i, &c)| (c == class).then_some(i)).collect()
    }

    /// Borrows centroid row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_centroids()`.
    pub fn centroid(&self, row: usize) -> &[f32] {
        self.vectors.row(row)
    }

    /// Applies the iterative-learning update `C_row ← C_row + alpha·h`
    /// (Eqs. 2 and 6; pass a negative `alpha` for the subtractive side).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `h.len() != dim()`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_centroids()`.
    pub fn update(&mut self, row: usize, alpha: f32, h: &[f32]) -> Result<()> {
        if h.len() != self.dim() {
            return Err(HdcError::DimensionMismatch { expected: self.dim(), found: h.len() });
        }
        self.vectors.add_scaled_row(row, alpha, h)?;
        Ok(())
    }

    /// Normalizes every centroid to unit L2 norm (§III-C-4).
    ///
    /// This keeps learning influence evenly distributed across the multiple
    /// class vectors of one class, preventing any single centroid from
    /// dominating its siblings.
    pub fn normalize(&mut self) {
        for r in 0..self.vectors.rows() {
            hd_linalg::normalize_l2(self.vectors.row_mut(r));
        }
    }

    /// Centers every centroid (subtracts its own mean) and then normalizes
    /// it to unit L2 norm — the full §III-C-4 normalization.
    ///
    /// Centering matters for the binary associative search: after 1-bit
    /// quantization, a centroid's dot similarity grows with its popcount,
    /// so heterogeneous row means would let ones-heavy centroids dominate
    /// every query regardless of signal. Centering gives every centroid an
    /// approximately balanced bit pattern, which is what keeps "any single
    /// vector from dominating" (paper §III-C-4).
    pub fn center_and_normalize(&mut self) {
        for r in 0..self.vectors.rows() {
            let row = self.vectors.row_mut(r);
            let mean = hd_linalg::mean(row);
            for v in row.iter_mut() {
                *v -= mean;
            }
            hd_linalg::normalize_l2(row);
        }
    }

    /// Mean of all AM values — the 1-bit quantization threshold `µ`
    /// (§III-B).
    pub fn mean(&self) -> f32 {
        self.vectors.mean().unwrap_or(0.0)
    }

    /// 1-bit quantization at the AM-wide mean (§III-B): values above `µ`
    /// become 1, the rest 0.
    pub fn quantize(&self) -> BinaryAm {
        self.quantize_at(self.mean())
    }

    /// 1-bit quantization with a per-centroid threshold: each row is
    /// binarized at **its own** mean.
    ///
    /// This is the majority-rule binarization of classic bundled
    /// hypervectors (a bit is set when more than the average mass landed on
    /// it), and it is the right choice for single-pass class vectors whose
    /// row means differ — a global threshold would hand ones-heavy rows a
    /// systematic popcount advantage in dot-similarity search.
    pub fn quantize_per_row(&self) -> BinaryAm {
        let rows: Vec<BitVector> = (0..self.vectors.rows())
            .map(|r| BitVector::from_mean_threshold(self.vectors.row(r)))
            .collect();
        BinaryAm {
            vectors: SearchMemory::from_rows(&rows).expect("FloatAm is never empty"),
            classes: self.classes.clone(),
            num_classes: self.num_classes,
        }
    }

    /// 1-bit quantization at an explicit threshold.
    pub fn quantize_at(&self, threshold: f32) -> BinaryAm {
        let rows: Vec<BitVector> = (0..self.vectors.rows())
            .map(|r| BitVector::from_threshold(self.vectors.row(r), threshold))
            .collect();
        BinaryAm {
            vectors: SearchMemory::from_rows(&rows).expect("FloatAm is never empty"),
            classes: self.classes.clone(),
            num_classes: self.num_classes,
        }
    }

    /// Dot-similarity scores of a floating-point query against every
    /// centroid.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query.len() != dim()`.
    pub fn scores(&self, query: &[f32]) -> Result<Vec<f32>> {
        if query.len() != self.dim() {
            return Err(HdcError::DimensionMismatch { expected: self.dim(), found: query.len() });
        }
        Ok(self.vectors.matvec(query)?)
    }

    /// Dot-similarity scores of every row of `queries` against every
    /// centroid: returns a `Q × C` matrix (row `q` = scores of query `q`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `queries.cols() != dim()`.
    pub fn scores_batch(&self, queries: &Matrix) -> Result<Matrix> {
        if queries.cols() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                found: queries.cols(),
            });
        }
        Ok(queries.matmul(&self.vectors.transpose())?)
    }

    /// Borrows the underlying centroid matrix (rows = centroids).
    pub fn as_matrix(&self) -> &Matrix {
        &self.vectors
    }

    /// Per-row class labels, parallel to the matrix rows.
    pub fn class_labels(&self) -> &[usize] {
        &self.classes
    }
}

/// Result of one associative search against a [`BinaryAm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// Winning row index in the AM.
    pub row: usize,
    /// Class owning the winning row.
    pub class: usize,
    /// Dot-similarity score of the winning row.
    pub score: u32,
}

/// Results of a batched associative search against a [`BinaryAm`]: one
/// [`SearchHit`] per query, plus the full score matrix for callers that
/// need runner-up scores (e.g. the within-class argmax of MEMHD's
/// quantization-aware training, paper Eq. 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResults {
    hits: Vec<SearchHit>,
    scores: ScoreMatrix,
}

impl SearchResults {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The winning hit of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn hit(&self, q: usize) -> &SearchHit {
        &self.hits[q]
    }

    /// All hits, parallel to the batch's queries.
    pub fn hits(&self) -> &[SearchHit] {
        &self.hits
    }

    /// Predicted classes, one per query.
    pub fn classes(&self) -> impl Iterator<Item = usize> + '_ {
        self.hits.iter().map(|h| h.class)
    }

    /// Scores of query `q` against every centroid row.
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn scores(&self, q: usize) -> &[u32] {
        self.scores.scores(q)
    }

    /// The full `Q × C` score matrix.
    pub fn score_matrix(&self) -> &ScoreMatrix {
        &self.scores
    }
}

/// Results of a cascade associative search against a [`BinaryAm`]: the
/// same winners [`BinaryAm::search_batch`] would produce (bit-identical
/// rows, classes, scores, and tie-breaks) plus the activation telemetry
/// of the prefix-pruned sweep. No score matrix exists — pruned rows were
/// never fully scored; that is the point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeSearchResults {
    hits: Vec<SearchHit>,
    stats: CascadeStats,
}

impl CascadeSearchResults {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The winning hit of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn hit(&self, q: usize) -> &SearchHit {
        &self.hits[q]
    }

    /// All hits, parallel to the batch's queries.
    pub fn hits(&self) -> &[SearchHit] {
        &self.hits
    }

    /// Predicted classes, one per query.
    pub fn classes(&self) -> impl Iterator<Item = usize> + '_ {
        self.hits.iter().map(|h| h.class)
    }

    /// Activation telemetry of the cascade (see
    /// [`hd_linalg::CascadeStats`]).
    pub fn stats(&self) -> &CascadeStats {
        &self.stats
    }
}

/// Maps a cascade-search substrate error: shape disagreements (batch or
/// plan vs the AM's dimensionality) become [`HdcError::DimensionMismatch`]
/// with the actual offending widths; anything else passes through as
/// [`HdcError::Linalg`].
fn cascade_error(e: hd_linalg::LinalgError) -> HdcError {
    match e {
        hd_linalg::LinalgError::ShapeMismatch { expected, found, .. } => {
            HdcError::DimensionMismatch { expected, found }
        }
        other => HdcError::Linalg(other),
    }
}

/// 1-bit quantized associative memory — what actually maps onto the IMC
/// array (§III-D).
///
/// One associative search ([`BinaryAm::search`]) is a single binary MVM:
/// the popcount-AND of the query against every stored centroid, followed by
/// an argmax across columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryAm {
    /// Centroid rows paired with their SIMD-blocked mirror: built once at
    /// construction so every batched search skips per-call packing.
    vectors: SearchMemory,
    classes: Vec<usize>,
    num_classes: usize,
}

impl BinaryAm {
    /// Builds a binary AM from `(class, vector)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidTrainingSet`] if empty,
    /// [`HdcError::DimensionMismatch`] on ragged vectors, and
    /// [`HdcError::UnknownClass`] for out-of-range labels.
    pub fn from_centroids(num_classes: usize, centroids: Vec<(usize, BitVector)>) -> Result<Self> {
        if centroids.is_empty() {
            return Err(HdcError::InvalidTrainingSet { reason: "no centroids supplied".into() });
        }
        let dim = centroids[0].1.len();
        let mut classes = Vec::with_capacity(centroids.len());
        let mut rows = Vec::with_capacity(centroids.len());
        for (class, v) in centroids {
            if class >= num_classes {
                return Err(HdcError::UnknownClass { class, num_classes });
            }
            if v.len() != dim {
                return Err(HdcError::DimensionMismatch { expected: dim, found: v.len() });
            }
            classes.push(class);
            rows.push(v);
        }
        Ok(BinaryAm { vectors: SearchMemory::from_rows(&rows)?, classes, num_classes })
    }

    /// Number of stored centroids (`C`).
    pub fn num_centroids(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// Class owning centroid row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_centroids()`.
    pub fn class_of(&self, row: usize) -> usize {
        self.classes[row]
    }

    /// Row indices of all centroids belonging to `class`.
    pub fn rows_of_class(&self, class: usize) -> Vec<usize> {
        self.classes.iter().enumerate().filter_map(|(i, &c)| (c == class).then_some(i)).collect()
    }

    /// Dot-similarity scores of a binary query against every centroid —
    /// one in-memory MVM.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query.len() != dim()`.
    pub fn scores(&self, query: &BitVector) -> Result<Vec<u32>> {
        if query.len() != self.dim() {
            return Err(HdcError::DimensionMismatch { expected: self.dim(), found: query.len() });
        }
        Ok(self.vectors.dot_all(query))
    }

    /// Full associative search: returns the best row, its class, and score
    /// (`pred = argmax_{i,j} δ_dot(C^b_ij, H^b)`, §III-D).
    ///
    /// Ties break toward the lower row index. This is the single-query
    /// slice of [`BinaryAm::search_batch`] — both run the same popcount
    /// kernel and winner selection; prefer the batched entry point when
    /// classifying many queries.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query.len() != dim()`.
    pub fn search(&self, query: &BitVector) -> Result<SearchHit> {
        let scores = self.scores(query)?;
        let (row, score) = hd_linalg::argmax_u32(&scores);
        Ok(SearchHit { row, class: self.classes[row], score })
    }

    /// Predicted class for a query (convenience over [`BinaryAm::search`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query.len() != dim()`.
    pub fn classify(&self, query: &BitVector) -> Result<usize> {
        Ok(self.search(query)?.class)
    }

    /// Dot-similarity scores of every query in `batch` against every
    /// centroid — `Q` in-memory MVMs answered in one tiled sweep.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `batch.dim() != dim()`.
    pub fn scores_batch(&self, batch: &QueryBatch) -> Result<ScoreMatrix> {
        if batch.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch { expected: self.dim(), found: batch.dim() });
        }
        Ok(self.vectors.dot_batch(batch)?)
    }

    /// Like [`BinaryAm::scores_batch`] but reusing `out` as scratch — the
    /// zero-allocation path for loops that re-score the same batch every
    /// epoch (quantization-aware training).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `batch.dim() != dim()`.
    pub fn scores_batch_into(&self, batch: &QueryBatch, out: &mut ScoreMatrix) -> Result<()> {
        if batch.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch { expected: self.dim(), found: batch.dim() });
        }
        Ok(self.vectors.dot_batch_into(batch, out)?)
    }

    /// Batched associative search — the preferred inference entry point.
    ///
    /// Equivalent to calling [`BinaryAm::search`] once per query (same
    /// kernel, same low-row tie-break) but tiled so each stored centroid
    /// word is loaded once per query tile, with no per-query allocation.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `batch.dim() != dim()`.
    pub fn search_batch(&self, batch: &QueryBatch) -> Result<SearchResults> {
        let raw = self.vectors.search_batch(batch).map_err(|_| HdcError::DimensionMismatch {
            expected: self.dim(),
            found: batch.dim(),
        })?;
        let hits = (0..raw.len())
            .map(|q| {
                let (row, score) = raw.winner(q);
                SearchHit { row, class: self.classes[row], score }
            })
            .collect();
        let scores = raw.into_score_matrix();
        Ok(SearchResults { hits, scores })
    }

    /// Predicted class per query of `batch`.
    ///
    /// Uses the winners-only blocked sweep (scores are reduced while
    /// cache-hot, never materialized), which is the fastest path when
    /// only predictions are needed.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `batch.dim() != dim()`.
    pub fn classify_batch(&self, batch: &QueryBatch) -> Result<Vec<usize>> {
        let winners = self.vectors.winners_batch(batch).map_err(|_| {
            HdcError::DimensionMismatch { expected: self.dim(), found: batch.dim() }
        })?;
        Ok(winners.into_iter().map(|(row, _)| self.classes[row]).collect())
    }

    /// Top-k associative search: the k best `(row, class, score)` hits
    /// per query, ordered score-descending with the workspace's low-row
    /// tie-break. `k` is clamped to the centroid count. Runs the fused
    /// k-best blocked sweep — scores are never materialized.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `batch.dim() != dim()`
    /// and [`HdcError::Linalg`] for `k == 0`.
    pub fn search_topk(&self, batch: &QueryBatch, k: usize) -> Result<Vec<Vec<SearchHit>>> {
        let raw = self.vectors.topk_batch(batch, k).map_err(cascade_error)?;
        Ok((0..raw.len())
            .map(|q| {
                raw.hits(q)
                    .iter()
                    .map(|&(row, score)| SearchHit { row, class: self.classes[row], score })
                    .collect()
            })
            .collect())
    }

    /// The k best classes per query, in hit order (a class appears once
    /// per winning centroid, so multi-centroid layouts may repeat one —
    /// rankers that want distinct labels should dedup downstream).
    ///
    /// # Errors
    ///
    /// As [`BinaryAm::search_topk`].
    pub fn classify_batch_topk(&self, batch: &QueryBatch, k: usize) -> Result<Vec<Vec<usize>>> {
        let raw = self.vectors.topk_batch(batch, k).map_err(cascade_error)?;
        Ok((0..raw.len())
            .map(|q| raw.hits(q).iter().map(|&(row, _)| self.classes[row]).collect())
            .collect())
    }

    /// Progressive-precision associative search: scores a dimension
    /// prefix per centroid, prunes centroids that provably cannot win
    /// (Hamming bound), and finishes only the survivors. Winners are
    /// bit-identical to [`BinaryAm::search_batch`]; the returned
    /// telemetry reports how many centroid-dimensions were activated —
    /// the paper's Fig. 7 energy proxy.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the batch or plan
    /// dimensionality differs from `dim()`.
    pub fn search_cascade(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
    ) -> Result<CascadeSearchResults> {
        let raw = self.vectors.search_cascade(batch, plan).map_err(cascade_error)?;
        let hits = raw
            .winners()
            .iter()
            .map(|&(row, score)| SearchHit { row, class: self.classes[row], score })
            .collect();
        let stats = raw.stats().clone();
        Ok(CascadeSearchResults { hits, stats })
    }

    /// Predicted class per query via the cascade — the classification
    /// fast path for plans whose early stages separate winners (same
    /// predictions as [`BinaryAm::classify_batch`], bit for bit).
    ///
    /// The plan's derived artifacts are cached on the AM's
    /// [`SearchMemory`], so repeated-batch loops (QAT epochs, eval
    /// sweeps) derive the stage-0 prefix sub-memory and row-suffix table
    /// once per plan, not once per call.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the batch or plan
    /// dimensionality differs from `dim()`.
    pub fn classify_batch_cascade(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
    ) -> Result<Vec<usize>> {
        let raw = self.vectors.search_cascade(batch, plan).map_err(cascade_error)?;
        Ok(raw.winners().iter().map(|&(row, _)| self.classes[row]).collect())
    }

    /// Auto-tunes a cascade stage plan for this AM from a sample of real
    /// queries (see [`hd_linalg::CascadePlan::tuned`]): the centroid
    /// popcount profile plus the sample's measured pruning pick the
    /// stage widths, replacing hand-picked prefixes. Workloads the
    /// Hamming bound cannot separate early get the exact one-stage plan
    /// back.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the sample's
    /// dimensionality differs from `dim()` and [`HdcError::Linalg`] for
    /// an empty sample.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::{BitVector, QueryBatch};
    /// use hdc::BinaryAm;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let am = BinaryAm::from_centroids(2, vec![
    ///     (0, BitVector::from_bools(&[true; 256])),
    ///     (1, BitVector::from_bools(&[false; 256])),
    /// ])?;
    /// let sample = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 256])])?;
    /// let plan = am.tuned_cascade_plan(&sample)?;
    /// assert_eq!(
    ///     am.classify_batch_cascade(&sample, &plan)?,
    ///     am.classify_batch(&sample)?,
    /// );
    /// # Ok(())
    /// # }
    /// ```
    pub fn tuned_cascade_plan(&self, sample: &QueryBatch) -> Result<CascadePlan> {
        CascadePlan::tuned(&self.vectors, sample).map_err(cascade_error)
    }

    /// Borrows centroid row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_centroids()`.
    pub fn centroid(&self, row: usize) -> BitVector {
        self.vectors.matrix().row(row)
    }

    /// Borrows the packed centroid matrix.
    pub fn as_bit_matrix(&self) -> &BitMatrix {
        self.vectors.matrix()
    }

    /// Borrows the search-optimized memory (row-major matrix plus its
    /// SIMD-blocked mirror when the active kernel backend uses one).
    pub fn search_memory(&self) -> &SearchMemory {
        &self.vectors
    }

    /// Per-row class labels, parallel to the matrix rows.
    pub fn class_labels(&self) -> &[usize] {
        &self.classes
    }

    /// Associative memory footprint in bits: `C × D` (Table I).
    pub fn memory_bits(&self) -> u64 {
        self.vectors.matrix().payload_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_float_am() -> FloatAm {
        FloatAm::from_centroids(
            2,
            vec![
                (0, vec![1.0, 0.0, 2.0, -1.0]),
                (0, vec![0.0, 1.0, 0.0, 1.0]),
                (1, vec![-1.0, -1.0, 3.0, 3.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn float_am_layout() {
        let am = small_float_am();
        assert_eq!(am.num_centroids(), 3);
        assert_eq!(am.num_classes(), 2);
        assert_eq!(am.dim(), 4);
        assert_eq!(am.class_of(0), 0);
        assert_eq!(am.class_of(2), 1);
        assert_eq!(am.rows_of_class(0), vec![0, 1]);
        assert_eq!(am.id_of(1), CentroidId { class: 0, sub: 1 });
    }

    #[test]
    fn float_am_rejects_bad_input() {
        assert!(FloatAm::from_centroids(2, vec![]).is_err());
        assert!(FloatAm::from_centroids(1, vec![(1, vec![0.0])]).is_err());
        assert!(FloatAm::from_centroids(2, vec![(0, vec![0.0, 1.0]), (1, vec![0.0])]).is_err());
    }

    #[test]
    fn update_and_scores() {
        let mut am = small_float_am();
        am.update(0, 2.0, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(am.centroid(0), &[3.0, 2.0, 4.0, 1.0]);
        let scores = am.scores(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(scores, vec![3.0, 0.0, -1.0]);
        assert!(am.update(0, 1.0, &[0.0]).is_err());
        assert!(am.scores(&[0.0]).is_err());
    }

    #[test]
    fn normalize_unit_rows() {
        let mut am = small_float_am();
        am.normalize();
        for r in 0..am.num_centroids() {
            let n = hd_linalg::l2_norm(am.centroid(r));
            assert!((n - 1.0).abs() < 1e-5, "row {r} norm {n}");
        }
    }

    #[test]
    fn quantize_thresholds_at_mean() {
        let am = small_float_am();
        let mu = am.mean();
        let bam = am.quantize();
        for r in 0..am.num_centroids() {
            for c in 0..am.dim() {
                assert_eq!(bam.as_bit_matrix().get(r, c), am.centroid(r)[c] > mu);
            }
        }
        assert_eq!(bam.class_labels(), am.class_labels());
    }

    #[test]
    fn quantize_per_row_uses_row_means() {
        // Row 0 mean 1.0, row 1 mean 10.0: a global threshold would zero
        // row 0 entirely; per-row keeps both rows' structure.
        let am = FloatAm::from_centroids(
            2,
            vec![(0, vec![0.5, 1.5, 0.5, 1.5]), (1, vec![5.0, 15.0, 5.0, 15.0])],
        )
        .unwrap();
        let b = am.quantize_per_row();
        assert_eq!(b.centroid(0).to_f32(), vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(b.centroid(1).to_f32(), vec![0.0, 1.0, 0.0, 1.0]);
        // Contrast with the global-mean quantizer.
        let g = am.quantize();
        assert_eq!(g.centroid(0).count_ones(), 0);
    }

    #[test]
    fn binary_am_search_picks_best_class() {
        let centroids = vec![
            (0, BitVector::from_bools(&[true, true, false, false])),
            (1, BitVector::from_bools(&[false, false, true, true])),
        ];
        let am = BinaryAm::from_centroids(2, centroids).unwrap();
        let q = BitVector::from_bools(&[true, true, true, false]);
        let hit = am.search(&q).unwrap();
        assert_eq!(hit.class, 0);
        assert_eq!(hit.score, 2);
        assert_eq!(am.classify(&q).unwrap(), 0);
    }

    #[test]
    fn binary_am_tie_breaks_low_row() {
        let centroids = vec![
            (1, BitVector::from_bools(&[true, false])),
            (0, BitVector::from_bools(&[false, true])),
        ];
        let am = BinaryAm::from_centroids(2, centroids).unwrap();
        let q = BitVector::from_bools(&[true, true]);
        assert_eq!(am.search(&q).unwrap().row, 0);
        assert_eq!(am.classify(&q).unwrap(), 1);
    }

    #[test]
    fn cascade_matches_batched_search() {
        use hd_linalg::rng::seeded;
        use rand::Rng;
        let mut rng = seeded(31);
        let dim = 192;
        let centroids: Vec<(usize, BitVector)> = (0..11)
            .map(|v| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                (v % 4, BitVector::from_bools(&bits))
            })
            .collect();
        let am = BinaryAm::from_centroids(4, centroids).unwrap();
        let queries: Vec<BitVector> = (0..23)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let exact = am.search_batch(&batch).unwrap();
        for plan in [
            CascadePlan::exact(dim),
            CascadePlan::prefix(dim, 64).unwrap(),
            CascadePlan::uniform(dim, 5).unwrap(),
        ] {
            let cascade = am.search_cascade(&batch, &plan).unwrap();
            assert_eq!(cascade.hits(), exact.hits(), "{plan:?}");
            assert_eq!(
                am.classify_batch_cascade(&batch, &plan).unwrap(),
                am.classify_batch(&batch).unwrap(),
                "{plan:?}"
            );
            assert!(cascade.stats().activated_dims() <= cascade.stats().exact_dims());
        }
    }

    #[test]
    fn topk_matches_sorted_scores() {
        use hd_linalg::rng::seeded;
        use rand::Rng;
        let mut rng = seeded(47);
        let dim = 160;
        let centroids: Vec<(usize, BitVector)> = (0..9)
            .map(|v| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                (v % 3, BitVector::from_bools(&bits))
            })
            .collect();
        let am = BinaryAm::from_centroids(3, centroids).unwrap();
        let queries: Vec<BitVector> = (0..17)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let exact = am.search_batch(&batch).unwrap();
        for k in [1usize, 3, 9, 12] {
            let topk = am.search_topk(&batch, k).unwrap();
            let classes = am.classify_batch_topk(&batch, k).unwrap();
            for (q, query) in queries.iter().enumerate() {
                // Oracle: stable sort of the full score vector by
                // (score desc, row asc), truncated to k.
                let mut rows: Vec<(usize, u32)> =
                    am.scores(query).unwrap().into_iter().enumerate().collect();
                rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                rows.truncate(k.min(am.num_centroids()));
                let got: Vec<(usize, u32)> = topk[q].iter().map(|h| (h.row, h.score)).collect();
                assert_eq!(got, rows, "query {q} k {k}");
                // Hits carry each row's owning class, in hit order.
                for hit in &topk[q] {
                    assert_eq!(hit.class, am.class_of(hit.row));
                }
                let want_classes: Vec<usize> = topk[q].iter().map(|h| h.class).collect();
                assert_eq!(classes[q], want_classes, "query {q} k {k}");
                // The top-1 entry is exactly the argmax search winner.
                assert_eq!(
                    (topk[q][0].row, topk[q][0].class, topk[q][0].score),
                    (exact.hits()[q].row, exact.hits()[q].class, exact.hits()[q].score),
                    "query {q} k {k}"
                );
            }
        }
        assert!(am.search_topk(&batch, 0).is_err());
    }

    #[test]
    fn cascade_dimension_checked() {
        let am = BinaryAm::from_centroids(1, vec![(0, BitVector::zeros(64))]).unwrap();
        let batch = QueryBatch::from_vectors(&[BitVector::zeros(64)]).unwrap();
        let bad_batch = QueryBatch::from_vectors(&[BitVector::zeros(65)]).unwrap();
        let plan = CascadePlan::exact(64);
        assert!(matches!(
            am.search_cascade(&bad_batch, &plan),
            Err(HdcError::DimensionMismatch { expected: 64, found: 65 })
        ));
        assert!(matches!(
            am.classify_batch_cascade(&batch, &CascadePlan::exact(63)),
            Err(HdcError::DimensionMismatch { expected: 64, found: 63 })
        ));
    }

    #[test]
    fn binary_am_memory_bits() {
        let centroids = vec![(0, BitVector::zeros(128)), (1, BitVector::zeros(128))];
        let am = BinaryAm::from_centroids(2, centroids).unwrap();
        assert_eq!(am.memory_bits(), 256);
    }

    #[test]
    fn binary_am_dimension_checked() {
        let am = BinaryAm::from_centroids(1, vec![(0, BitVector::zeros(8))]).unwrap();
        assert!(am.scores(&BitVector::zeros(9)).is_err());
    }

    #[test]
    fn zeroed_single_centroid_layout() {
        let am = FloatAm::zeroed_single_centroid(3, 16);
        assert_eq!(am.num_centroids(), 3);
        assert_eq!(am.class_labels(), &[0, 1, 2]);
    }

    #[test]
    fn centroid_id_display() {
        let id = CentroidId { class: 2, sub: 5 };
        assert_eq!(id.to_string(), "class 2 / centroid 5");
    }
}
