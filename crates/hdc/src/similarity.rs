//! Similarity measures for associative search (paper §II-D).
//!
//! MEMHD standardizes on **dot similarity** (Eq. 3) because it is exactly
//! what an IMC array computes in one MVM; Hamming and cosine are provided
//! for completeness and for cross-checking the baselines.

use hd_linalg::BitVector;

/// The similarity metric used by an associative search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Similarity {
    /// Dot product (Eq. 3) — the IMC-native metric; MEMHD's default.
    #[default]
    Dot,
    /// Cosine similarity (dot normalized by both magnitudes).
    Cosine,
    /// Negated Hamming distance (higher = more similar).
    Hamming,
}

impl Similarity {
    /// Evaluates this metric between two real-valued hypervectors.
    ///
    /// Higher is always "more similar", so Hamming distance is negated.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn eval_f32(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Similarity::Dot => hd_linalg::dot(a, b),
            Similarity::Cosine => {
                let na = hd_linalg::l2_norm(a);
                let nb = hd_linalg::l2_norm(b);
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    hd_linalg::dot(a, b) / (na * nb)
                }
            }
            Similarity::Hamming => {
                // Real-valued "Hamming": count of sign disagreements, negated.
                let d = a.iter().zip(b).filter(|(x, y)| (**x > 0.0) != (**y > 0.0)).count();
                -(d as f32)
            }
        }
    }

    /// Evaluates this metric between two binary hypervectors.
    ///
    /// Higher is always "more similar".
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn eval_binary(&self, a: &BitVector, b: &BitVector) -> f32 {
        match self {
            Similarity::Dot => a.dot(b) as f32,
            Similarity::Cosine => {
                let na = (a.count_ones() as f32).sqrt();
                let nb = (b.count_ones() as f32).sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    a.dot(b) as f32 / (na * nb)
                }
            }
            Similarity::Hamming => -(a.hamming(b) as f32),
        }
    }
}

/// Dot similarity between two real hypervectors (Eq. 3).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    hd_linalg::dot(a, b)
}

/// Dot similarity between two binary hypervectors: `popcount(a AND b)`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_binary(a: &BitVector, b: &BitVector) -> u32 {
    a.dot(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_linalg() {
        assert_eq!(dot_f32(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn dot_binary_counts_overlap() {
        let a = BitVector::from_bools(&[true, true, false]);
        let b = BitVector::from_bools(&[true, false, false]);
        assert_eq!(dot_binary(&a, &b), 1);
    }

    #[test]
    fn similarity_dot_f32() {
        let s = Similarity::Dot.eval_f32(&[1.0, -1.0], &[2.0, 2.0]);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn similarity_cosine_unit() {
        let s = Similarity::Cosine.eval_f32(&[1.0, 0.0], &[2.0, 0.0]);
        assert!((s - 1.0).abs() < 1e-6);
        // Orthogonal vectors
        let s = Similarity::Cosine.eval_f32(&[1.0, 0.0], &[0.0, 3.0]);
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn similarity_cosine_zero_vector() {
        assert_eq!(Similarity::Cosine.eval_f32(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn similarity_hamming_negated() {
        let a = BitVector::from_bools(&[true, false, true]);
        let b = BitVector::from_bools(&[true, true, false]);
        assert_eq!(Similarity::Hamming.eval_binary(&a, &b), -2.0);
        // Identical vectors have maximal (zero) similarity.
        assert_eq!(Similarity::Hamming.eval_binary(&a, &a), 0.0);
    }

    #[test]
    fn binary_cosine_in_unit_range() {
        let a = BitVector::from_bools(&[true, true, true, false]);
        let b = BitVector::from_bools(&[true, false, true, true]);
        let s = Similarity::Cosine.eval_binary(&a, &b);
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn default_is_dot() {
        assert_eq!(Similarity::default(), Similarity::Dot);
    }
}
